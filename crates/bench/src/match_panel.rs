//! Matching panels: engine throughput on streamed documents, and the
//! end-to-end payoff of minimizing before matching.
//!
//! These are the data-side companions to the minimization figures: the
//! paper minimizes queries *because* matching cost grows with pattern
//! size, and these panels measure that matching side directly.
//!
//! The naive backtracking enumerator is deliberately absent from the
//! throughput panel: its embedding count (and hence its runtime) is
//! exponential in the pattern size, so it cannot be run on the
//! multi-thousand-node documents the other engines sweep (see
//! EXPERIMENTS.md).

use crate::experiments::ExpConfig;
use crate::{measure_micros, Panel, Point, Series, UNIT_MICROS, UNIT_THROUGHPUT};
use std::io::BufReader;
use tpq_core::{minimize_with, Strategy};
use tpq_data::{generate_document, parse_xml_reader, stream_xml_to, DocumentSpec, XmlStreamSpec};
use tpq_workload::{redundancy_query, relevant_constraints, RedundancySpec};

/// Matching throughput (document nodes per second, higher is better) of
/// the twig join vs the embed matcher over streamed-from-disk documents of
/// growing size. Each measured run is one-shot — index build included —
/// because that is what `tpq match` and the serve path pay.
pub fn match_throughput(cfg: &ExpConfig) -> Panel {
    let xs = cfg.grid(&[10_000, 40_000, 120_000], &[2_000, 8_000]);
    let mut twig_pts = Vec::new();
    let mut embed_pts = Vec::new();
    for &x in &xs {
        let spec = XmlStreamSpec { nodes: x as usize, seed: cfg.seed, ..XmlStreamSpec::default() };
        // Round-trip through a real file: the generator streams XML to
        // disk and the chunked reader ingests it, so the panel also
        // covers the pipeline a multi-hundred-MB document would take.
        let path = std::env::temp_dir()
            .join(format!("tpq-match-throughput-{}-{x}.xml", std::process::id()));
        let mut types = tpq_base::TypeInterner::new();
        let doc = (|| -> std::io::Result<_> {
            let file = std::fs::File::create(&path)?;
            stream_xml_to(&spec, file)?;
            let reader = BufReader::new(std::fs::File::open(&path)?);
            Ok(parse_xml_reader(reader, &mut types).expect("generator emits valid XML"))
        })()
        .expect("temp dir is writable");
        let _ = std::fs::remove_file(&path);
        // A three-level twig over the generator's densest types.
        let query = tpq_pattern::parse_pattern("t0*[//t1]//t2", &mut types).unwrap();
        let (twig_m, twig_ans) =
            measure_micros(cfg.iters, || tpq_match::answer_set_twig(&query, &doc));
        let (embed_m, embed_ans) =
            measure_micros(cfg.iters, || tpq_match::answer_set(&query, &doc));
        assert_eq!(twig_ans, embed_ans, "engines disagree at {x} nodes");
        twig_pts.push(throughput_point(x, twig_m));
        embed_pts.push(throughput_point(x, embed_m));
    }
    Panel {
        id: "match-throughput".into(),
        title: "matching throughput on streamed documents: twig join vs embed".into(),
        x_label: "DocNodes".into(),
        unit: UNIT_THROUGHPUT.into(),
        series: vec![
            Series { label: "Twig".into(), points: twig_pts },
            Series { label: "Embed".into(), points: embed_pts },
        ],
    }
}

/// Convert a wall-time measurement over a document of `nodes` nodes into
/// nodes/second, keeping the sample spread (fastest run → max throughput).
fn throughput_point(nodes: u64, m: crate::Measurement) -> Point {
    let thru = |us: f64| nodes as f64 / (us.max(1e-3) / 1e6);
    Point {
        x: nodes,
        micros: thru(m.median),
        min_micros: thru(m.max),
        max_micros: thru(m.min),
        aux_micros: None,
    }
}

/// End-to-end latency of answering a Figure-7 redundancy query: matching
/// the raw query as-is, matching its pre-minimized form, and the full
/// minimize-then-match pipeline. The gap between `Raw` and
/// `MinimizeThenMatch` is the payoff the paper argues for — minimization
/// cost is tiny next to the matching it saves.
pub fn minimize_then_match(cfg: &ExpConfig) -> Panel {
    let xs = cfg.grid(&[4, 8, 12, 16], &[4, 12]);
    let doc_nodes = if cfg.quick { 1_500 } else { 6_000 };
    let mut raw_pts = Vec::new();
    let mut min_pts = Vec::new();
    let mut pipe_pts = Vec::new();
    for &x in &xs {
        let q = redundancy_query(&RedundancySpec {
            total_nodes: 33,
            redundant_nodes: x as usize,
            degree: 2,
        });
        let ics = relevant_constraints(&q, 8);
        let minimized = minimize_with(&q.pattern, &ics, Strategy::default()).pattern;
        assert_eq!(minimized.size(), q.expected_minimal_size);
        // The generator's interner ids cover exactly the query's types, so
        // a document drawn over that universe matches non-trivially.
        let doc = generate_document(&DocumentSpec {
            nodes: doc_nodes,
            num_types: q.types.len(),
            seed: cfg.seed,
            ..DocumentSpec::default()
        });
        let (raw_m, raw_ans) =
            measure_micros(cfg.iters, || tpq_match::answer_set_twig(&q.pattern, &doc));
        let (min_m, min_ans) =
            measure_micros(cfg.iters, || tpq_match::answer_set_twig(&minimized, &doc));
        // ICs hold vacuously relevant here — minimization must not change
        // the answers on any document the raw/minimized pair agrees on.
        assert_eq!(raw_ans, min_ans, "minimized query changed the answer set at x={x}");
        let (pipe_m, _) = measure_micros(cfg.iters, || {
            let m = minimize_with(&q.pattern, &ics, Strategy::default()).pattern;
            tpq_match::answer_set_twig(&m, &doc)
        });
        raw_pts.push(Point::timed(x, raw_m));
        min_pts.push(Point::timed(x, min_m));
        pipe_pts.push(Point::timed(x, pipe_m));
    }
    Panel {
        id: "minimize-then-match".into(),
        title: "Figure-7 queries end-to-end: raw match vs minimize-then-match".into(),
        x_label: "RedNodes".into(),
        unit: UNIT_MICROS.into(),
        series: vec![
            Series { label: "Raw".into(), points: raw_pts },
            Series { label: "Minimized".into(), points: min_pts },
            Series { label: "MinimizeThenMatch".into(), points: pipe_pts },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_panel_is_higher_is_better_and_engines_scale() {
        let p = match_throughput(&ExpConfig::quick());
        assert_eq!(p.unit, UNIT_THROUGHPUT);
        assert!(!p.lower_is_better(), "throughput wants higher values");
        assert_eq!(p.series.len(), 2);
        for s in &p.series {
            for pt in &s.points {
                assert!(pt.micros > 0.0, "{}: zero throughput", s.label);
                assert!(pt.min_micros <= pt.micros && pt.micros <= pt.max_micros);
            }
        }
    }

    #[test]
    fn minimized_matching_beats_raw_at_max_redundancy() {
        let p = minimize_then_match(&ExpConfig::quick());
        assert_eq!(p.series.len(), 3);
        // The robust claim is Minimized < Raw (pattern is ~half the size);
        // the full pipeline additionally pays minimization, which at quick
        // scale is comparable to the matching it saves, so it is only
        // reported, not asserted against.
        let raw = p.series[0].points.last().unwrap().micros;
        let min = p.series[1].points.last().unwrap().micros;
        assert!(
            min < raw,
            "matching the minimized query ({min:.0}us) should beat raw ({raw:.0}us)"
        );
    }
}
