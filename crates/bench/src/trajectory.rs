//! Persisted benchmark trajectories: one schema-versioned JSON file per
//! panel (`BENCH_<panel>.json`), committed at the repo root so every PR
//! carries its own perf history and the `compare` binary can diff any two
//! revisions' numbers point-by-point.
//!
//! A trajectory records *how* the numbers were produced (git revision,
//! date, iteration count, seed, quick flag) alongside the measured
//! [`Panel`], so a reader can tell a full-grid run from a CI quick run
//! and never compares across grids by accident.

use crate::{experiments::ExpConfig, Panel};
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};
use tpq_base::Json;

/// Version of the on-disk trajectory shape. Bump on breaking changes;
/// [`Trajectory::from_json`] rejects files from other versions so the
/// compare gate fails loudly instead of misreading old files.
pub const SCHEMA_VERSION: i64 = 1;

/// One panel's persisted measurement run.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// On-disk schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: i64,
    /// `git rev-parse --short HEAD` at measurement time (`"unknown"`
    /// outside a git checkout).
    pub git_rev: String,
    /// UTC date of the run, `YYYY-MM-DD`.
    pub date: String,
    /// Timing iterations per point.
    pub iters: usize,
    /// Workload seed.
    pub seed: u64,
    /// Whether the reduced quick grids were used.
    pub quick: bool,
    /// The measured panel.
    pub panel: Panel,
}

impl Trajectory {
    /// Wrap a measured panel with the current provenance.
    pub fn new(panel: Panel, cfg: &ExpConfig) -> Trajectory {
        Trajectory {
            schema_version: SCHEMA_VERSION,
            git_rev: git_rev(),
            date: utc_date(),
            iters: cfg.iters,
            seed: cfg.seed,
            quick: cfg.quick,
            panel,
        }
    }

    /// Canonical file name for this trajectory: `BENCH_<panel-id>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.panel.id)
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema_version", Json::Int(self.schema_version)),
            ("git_rev", Json::Str(self.git_rev.clone())),
            ("date", Json::Str(self.date.clone())),
            ("iters", Json::Int(self.iters as i64)),
            ("seed", Json::Int(self.seed as i64)),
            ("quick", Json::Bool(self.quick)),
            ("panel", self.panel.to_json()),
        ])
    }

    /// Parse the [`Trajectory::to_json`] form, rejecting other schema
    /// versions.
    pub fn from_json(json: &Json) -> Result<Trajectory, String> {
        let schema_version = json
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or_else(|| "trajectory is missing integer 'schema_version'".to_owned())?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "trajectory schema version {schema_version} is not the supported {SCHEMA_VERSION}"
            ));
        }
        let panel = Panel::from_json(
            json.get("panel").ok_or_else(|| "trajectory is missing 'panel'".to_owned())?,
        )?;
        Ok(Trajectory {
            schema_version,
            git_rev: json.get("git_rev").and_then(Json::as_str).unwrap_or("unknown").to_owned(),
            date: json.get("date").and_then(Json::as_str).unwrap_or("").to_owned(),
            iters: json.get("iters").and_then(Json::as_i64).unwrap_or(0) as usize,
            seed: json.get("seed").and_then(Json::as_i64).unwrap_or(0) as u64,
            quick: json.get("quick").and_then(Json::as_bool).unwrap_or(false),
            panel,
        })
    }

    /// Write `BENCH_<panel>.json` under `dir`, returning the path.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, format!("{}\n", self.to_json().to_string_pretty()))?;
        Ok(path)
    }

    /// Load one trajectory file.
    pub fn load(path: &Path) -> Result<Trajectory, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json =
            Json::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
        Trajectory::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Load every `BENCH_*.json` in `dir`, sorted by panel id. Unreadable or
/// wrong-schema files are errors — the perf gate must not silently skip
/// panels.
pub fn load_dir(dir: &Path) -> Result<Vec<Trajectory>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            out.push(Trajectory::load(&entry.path())?);
        }
    }
    out.sort_by(|a, b| a.panel.id.cmp(&b.panel.id));
    Ok(out)
}

/// Short git revision of the working tree, or `"unknown"`.
pub fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (no external
/// time crates: days-since-epoch to civil date via the standard
/// era-decomposition algorithm).
pub fn utc_date() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Convert days since 1970-01-01 to a (year, month, day) civil date.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Point, Series};

    fn demo_panel() -> Panel {
        Panel {
            id: "demo".into(),
            title: "demo".into(),
            x_label: "x".into(),
            unit: crate::UNIT_MICROS.into(),
            series: vec![Series {
                label: "S".into(),
                points: vec![Point::flat(1, 10.0), Point::flat(2, 20.0)],
            }],
        }
    }

    #[test]
    fn trajectory_round_trips_and_names_its_file() {
        let t = Trajectory::new(demo_panel(), &ExpConfig::quick());
        assert_eq!(t.file_name(), "BENCH_demo.json");
        let parsed = Trajectory::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed.schema_version, SCHEMA_VERSION);
        assert_eq!(parsed.panel.id, "demo");
        assert_eq!(parsed.iters, 3);
        assert!(parsed.quick);
        assert_eq!(parsed.panel.series[0].points[1].micros, 20.0);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut json = Trajectory::new(demo_panel(), &ExpConfig::default()).to_json();
        if let Json::Object(members) = &mut json {
            for (k, v) in members.iter_mut() {
                if k == "schema_version" {
                    *v = Json::Int(99);
                }
            }
        }
        let err = Trajectory::from_json(&json).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn civil_date_handles_epochs_and_leap_years() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(365), (1971, 1, 1));
        // 2000-02-29 is day 11016.
        assert_eq!(civil_from_days(11_016), (2000, 2, 29));
        // 2026-08-08 is day 20_673.
        assert_eq!(civil_from_days(20_673), (2026, 8, 8));
        let date = utc_date();
        assert_eq!(date.len(), 10);
        assert_eq!(date.as_bytes()[4], b'-');
    }

    #[test]
    fn load_dir_reads_only_bench_files() {
        let dir = std::env::temp_dir().join(format!("tpq-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let t = Trajectory::new(demo_panel(), &ExpConfig::quick());
        t.write_to(&dir).unwrap();
        std::fs::write(dir.join("notes.json"), "{}").unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].panel.id, "demo");
        // A corrupt BENCH file is a hard error, not a skip.
        std::fs::write(dir.join("BENCH_bad.json"), "not json").unwrap();
        assert!(load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
