//! Diff two benchmark-trajectory directories and fail on regressions —
//! the CI perf gate.
//!
//! ```text
//! cargo run -p tpq-bench --bin compare -- <baseline-dir> <candidate-dir>
//! cargo run -p tpq-bench --bin compare -- . out --threshold 50
//! cargo run -p tpq-bench --bin compare -- . out --panel-threshold serve-latency=80
//! ```
//!
//! Both directories are scanned for `BENCH_*.json` files (the format the
//! `experiments` binary writes with `--out-dir`). Every panel present in
//! the baseline must still exist in the candidate and every matched point
//! — keyed by `(series, x)` — must stay within the noise threshold
//! (default ±20%, `--threshold` takes percent). Micros points under
//! `--abs-floor-us` (default 20) never regress: sub-floor timings are
//! scheduler noise. A markdown report is printed to stdout.
//!
//! Exit codes: `0` no regressions, `1` regressions or missing panels,
//! `2` usage or schema errors.

use std::path::Path;
use std::process::ExitCode;
use tpq_bench::compare::{compare, Thresholds};
use tpq_bench::trajectory::load_dir;

fn main() -> ExitCode {
    let mut th = Thresholds::default();
    let mut dirs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 => th.default_rel = pct / 100.0,
                _ => return usage("--threshold needs a positive percent"),
            },
            "--abs-floor-us" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(us) if us >= 0.0 => th.abs_floor_us = us,
                _ => return usage("--abs-floor-us needs a non-negative number"),
            },
            "--panel-threshold" => {
                let Some(spec) = args.next() else {
                    return usage("--panel-threshold needs <panel>=<percent>");
                };
                let Some((panel, pct)) = spec.split_once('=') else {
                    return usage("--panel-threshold needs <panel>=<percent>");
                };
                match pct.parse::<f64>() {
                    Ok(pct) if pct > 0.0 => th.per_panel.push((panel.to_owned(), pct / 100.0)),
                    _ => return usage("--panel-threshold percent must be positive"),
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: compare <baseline-dir> <candidate-dir> [--threshold PCT] \
                     [--abs-floor-us US] [--panel-threshold <panel>=<PCT>]..."
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag '{other}'"));
            }
            dir => dirs.push(dir.to_owned()),
        }
    }
    let [baseline_dir, candidate_dir] = dirs.as_slice() else {
        return usage("expected exactly <baseline-dir> and <candidate-dir>");
    };
    let baseline = match load_dir(Path::new(baseline_dir)) {
        Ok(t) => t,
        Err(e) => return schema_error(&e),
    };
    let candidate = match load_dir(Path::new(candidate_dir)) {
        Ok(t) => t,
        Err(e) => return schema_error(&e),
    };
    if baseline.is_empty() {
        return schema_error(&format!("no BENCH_*.json files in {baseline_dir}"));
    }
    // Warn when the two runs used different grids — the comparison still
    // works (points match by key) but the provenance difference matters.
    for base in &baseline {
        if let Some(cand) = candidate.iter().find(|c| c.panel.id == base.panel.id) {
            if base.quick != cand.quick {
                eprintln!(
                    "warning: {}: baseline quick={} vs candidate quick={} — grids differ",
                    base.panel.id, base.quick, cand.quick
                );
            }
        }
    }
    let report = compare(&baseline, &candidate, &th);
    print!("{}", report.to_markdown());
    eprintln!(
        "compare: {} improved, {} regressed, {} unchanged, {} new, {} missing",
        report.count(tpq_bench::compare::PanelStatus::Improved),
        report.count(tpq_bench::compare::PanelStatus::Regressed),
        report.count(tpq_bench::compare::PanelStatus::Unchanged),
        report.count(tpq_bench::compare::PanelStatus::New),
        report.count(tpq_bench::compare::PanelStatus::Missing),
    );
    if report.has_failures() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg} (try --help)");
    ExitCode::from(2)
}

fn schema_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}
