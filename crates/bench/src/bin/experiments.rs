//! Regenerate the paper's evaluation figures as text tables / JSON /
//! persisted benchmark trajectories.
//!
//! ```text
//! cargo run --release -p tpq-bench --bin experiments            # all panels
//! cargo run --release -p tpq-bench --bin experiments -- fig8a   # one panel
//! cargo run --release -p tpq-bench --bin experiments -- --json all > series.json
//! cargo run --release -p tpq-bench --bin experiments -- --metrics-dir out fig7b
//! cargo run --release -p tpq-bench --bin experiments -- --quick --seed 42 --out-dir .
//! ```
//!
//! With `--out-dir <dir>`, every measured panel is also written as a
//! schema-versioned trajectory file `<dir>/BENCH_<panel>.json` (git rev,
//! date, iterations, seed and quick flag alongside the points) — the
//! format `tpq-bench compare` diffs and the CI perf gate checks. `--quick`
//! shrinks the grids for CI; `--panels a,b,c` is an alternative spelling
//! of the positional panel list; `--seed` seeds the sampled workloads
//! (the serve replay mix).
//!
//! With `--metrics-dir <dir>`, every panel run is captured by the `tpq-obs`
//! layer and its span/counter report is written to `<dir>/<panel>.metrics.json`
//! (one file per panel name; `ablate` produces `ablate.metrics.json`). For
//! panels exercising ACIM this also prints the share of ACIM time spent
//! building the images/ancestor tables — the paper's Figure 7(b) quantity.

use std::process::ExitCode;
use tpq_bench::experiments::{self, ExpConfig};
use tpq_bench::trajectory::Trajectory;
use tpq_bench::Panel;

/// One panel group's runner, dispatched by name.
type PanelRunner = Box<dyn Fn(&ExpConfig) -> Vec<Panel>>;

const PANEL_NAMES: [&str; 16] = [
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "fig8b-fanout",
    "fig9a",
    "fig9b",
    "ablate",
    "batch",
    "batch-speedup",
    "cache",
    "serve-latency",
    "serve-concurrency",
    "match-throughput",
    "minimize-then-match",
    "serve-degradation",
];

fn main() -> ExitCode {
    let mut json = false;
    let mut metrics_dir: Option<String> = None;
    let mut out_dir: Option<String> = None;
    let mut cfg = ExpConfig::default();
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" => {
                let seed = cfg.seed;
                cfg = ExpConfig::quick();
                cfg.seed = seed;
            }
            "--metrics-dir" => match args.next() {
                Some(dir) => metrics_dir = Some(dir),
                None => {
                    eprintln!("--metrics-dir needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--out-dir" => match args.next() {
                Some(dir) => out_dir = Some(dir),
                None => {
                    eprintln!("--out-dir needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(seed) => cfg.seed = seed,
                None => {
                    eprintln!("--seed needs an unsigned integer");
                    return ExitCode::FAILURE;
                }
            },
            "--panels" => match args.next() {
                Some(list) => wanted.extend(list.split(',').map(|s| s.trim().to_owned())),
                None => {
                    eprintln!("--panels needs a comma-separated list");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--json] [--quick] [--seed N] [--out-dir <dir>] \
                     [--metrics-dir <dir>] [--panels a,b,c] [{} | all]",
                    PANEL_NAMES.join(" ")
                );
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        // `batch` already measures and emits the derived speedup panel;
        // listing both would measure the batch twice.
        wanted = PANEL_NAMES
            .iter()
            .filter(|n| **n != "batch-speedup")
            .map(|s| (*s).to_owned())
            .collect();
    }
    let mut panels: Vec<Panel> = Vec::new();
    for w in &wanted {
        let run: PanelRunner = match w.as_str() {
            "fig7a" => Box::new(|c| vec![experiments::fig7a(c)]),
            "fig7b" => Box::new(|c| vec![experiments::fig7b(c)]),
            "fig8a" => Box::new(|c| vec![experiments::fig8a(c)]),
            "fig8b" => Box::new(|c| vec![experiments::fig8b(c)]),
            "fig8b-fanout" => Box::new(|c| vec![experiments::fig8b_fanout(c)]),
            "fig9a" => Box::new(|c| vec![experiments::fig9a(c)]),
            "fig9b" => Box::new(|c| vec![experiments::fig9b(c)]),
            "ablate" => Box::new(experiments::ablations),
            "batch" => Box::new(|c| {
                let (timing, speedup) = experiments::batch_with_speedup(c);
                vec![timing, speedup]
            }),
            // `batch` already emits the derived speedup panel; asking for
            // it alone still measures the batch (the speedup is derived
            // from those timings) but returns only the ratio panel.
            "batch-speedup" => Box::new(|c| vec![experiments::batch_with_speedup(c).1]),
            "cache" => Box::new(|c| vec![experiments::cache(c)]),
            "serve-latency" => Box::new(|c| vec![tpq_bench::serve_panel::serve_latency(c)]),
            "serve-concurrency" => {
                Box::new(|c| vec![tpq_bench::concurrency_panel::serve_concurrency(c)])
            }
            "match-throughput" => Box::new(|c| vec![tpq_bench::match_panel::match_throughput(c)]),
            "minimize-then-match" => {
                Box::new(|c| vec![tpq_bench::match_panel::minimize_then_match(c)])
            }
            "serve-degradation" => {
                Box::new(|c| vec![tpq_bench::degradation_panel::serve_degradation(c)])
            }
            other => {
                eprintln!("unknown panel '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
        };
        match run_captured(w, metrics_dir.as_deref(), &cfg, run.as_ref()) {
            Ok(mut group) => panels.append(&mut group),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Asking for `batch` and `batch-speedup` together must not duplicate
    // the derived panel.
    panels.dedup_by(|a, b| a.id == b.id);
    if !experiments::check_unique_ids(&panels) {
        eprintln!("error: duplicate panel ids in the run");
        return ExitCode::FAILURE;
    }
    if let Some(dir) = out_dir {
        let dir = std::path::Path::new(&dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for panel in &panels {
            let trajectory = Trajectory::new(panel.clone(), &cfg);
            match trajectory.write_to(dir) {
                Ok(path) => eprintln!("{}: trajectory written to {}", panel.id, path.display()),
                Err(e) => {
                    eprintln!("error: cannot write {}: {e}", trajectory.file_name());
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    emit(&panels, json)
}

/// Run one panel group, capturing its observability report when a metrics
/// directory was given.
fn run_captured(
    name: &str,
    metrics_dir: Option<&str>,
    cfg: &ExpConfig,
    run: &dyn Fn(&ExpConfig) -> Vec<Panel>,
) -> Result<Vec<Panel>, String> {
    let Some(dir) = metrics_dir else {
        return Ok(run(cfg));
    };
    tpq_obs::set_enabled(true);
    tpq_obs::reset();
    let panels = run(cfg);
    let report = tpq_obs::report();
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let path = format!("{dir}/{name}.metrics.json");
    std::fs::write(&path, report.to_json().to_string_pretty())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    if let (Some(tables), Some(acim)) = (report.span("acim.tables"), report.span("acim")) {
        eprintln!(
            "{name}: acim.tables = {:.0}% of acim time ({} table builds over {} tests)",
            tables.total_ns as f64 / acim.total_ns.max(1) as f64 * 100.0,
            tables.count,
            report.counter("redundancy_tests"),
        );
    }
    eprintln!("{name}: metrics written to {path}");
    Ok(panels)
}

fn emit(panels: &[Panel], json: bool) -> ExitCode {
    if json {
        let doc = tpq_base::Json::Array(panels.iter().map(Panel::to_json).collect());
        println!("{}", doc.to_string_pretty());
    } else {
        for p in panels {
            println!("{}", p.to_table());
        }
    }
    ExitCode::SUCCESS
}
