//! Regenerate the paper's evaluation figures as text tables / JSON.
//!
//! ```text
//! cargo run --release -p tpq-bench --bin experiments            # all panels
//! cargo run --release -p tpq-bench --bin experiments -- fig8a   # one panel
//! cargo run --release -p tpq-bench --bin experiments -- --json all > series.json
//! cargo run --release -p tpq-bench --bin experiments -- --metrics-dir out fig7b
//! ```
//!
//! With `--metrics-dir <dir>`, every panel run is captured by the `tpq-obs`
//! layer and its span/counter report is written to `<dir>/<panel>.metrics.json`
//! (one file per panel name; `ablate` produces `ablate.metrics.json`). For
//! panels exercising ACIM this also prints the share of ACIM time spent
//! building the images/ancestor tables — the paper's Figure 7(b) quantity.

use std::process::ExitCode;
use tpq_bench::experiments;
use tpq_bench::Panel;

fn main() -> ExitCode {
    let mut json = false;
    let mut metrics_dir: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--metrics-dir" => match args.next() {
                Some(dir) => metrics_dir = Some(dir),
                None => {
                    eprintln!("--metrics-dir needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--json] [--metrics-dir <dir>] \
                     [fig7a fig7b fig8a fig8b fig8b-fanout fig9a fig9b ablate batch | all]"
                );
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "fig7a",
            "fig7b",
            "fig8a",
            "fig8b",
            "fig8b-fanout",
            "fig9a",
            "fig9b",
            "ablate",
            "batch",
        ]
        .map(str::to_owned)
        .to_vec();
    }
    let mut panels: Vec<Panel> = Vec::new();
    for w in &wanted {
        let run: fn() -> Vec<Panel> = match w.as_str() {
            "fig7a" => || vec![experiments::fig7a()],
            "fig7b" => || vec![experiments::fig7b()],
            "fig8a" => || vec![experiments::fig8a()],
            "fig8b" => || vec![experiments::fig8b()],
            "fig8b-fanout" => || vec![experiments::fig8b_fanout()],
            "fig9a" => || vec![experiments::fig9a()],
            "fig9b" => || vec![experiments::fig9b()],
            "ablate" => experiments::ablations,
            "batch" => || vec![experiments::batch()],
            other => {
                eprintln!("unknown panel '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
        };
        match run_captured(w, metrics_dir.as_deref(), run) {
            Ok(mut group) => panels.append(&mut group),
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    emit(&panels, json)
}

/// Run one panel group, capturing its observability report when a metrics
/// directory was given.
fn run_captured(
    name: &str,
    metrics_dir: Option<&str>,
    run: fn() -> Vec<Panel>,
) -> Result<Vec<Panel>, String> {
    let Some(dir) = metrics_dir else {
        return Ok(run());
    };
    tpq_obs::set_enabled(true);
    tpq_obs::reset();
    let panels = run();
    let report = tpq_obs::report();
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let path = format!("{dir}/{name}.metrics.json");
    std::fs::write(&path, report.to_json().to_string_pretty())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    if let (Some(tables), Some(acim)) = (report.span("acim.tables"), report.span("acim")) {
        eprintln!(
            "{name}: acim.tables = {:.0}% of acim time ({} table builds over {} tests)",
            tables.total_ns as f64 / acim.total_ns.max(1) as f64 * 100.0,
            tables.count,
            report.counter("redundancy_tests"),
        );
    }
    eprintln!("{name}: metrics written to {path}");
    Ok(panels)
}

fn emit(panels: &[Panel], json: bool) -> ExitCode {
    if json {
        let doc = tpq_base::Json::Array(panels.iter().map(Panel::to_json).collect());
        println!("{}", doc.to_string_pretty());
    } else {
        for p in panels {
            println!("{}", p.to_table());
        }
    }
    ExitCode::SUCCESS
}
