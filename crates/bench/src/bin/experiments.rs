//! Regenerate the paper's evaluation figures as text tables / JSON.
//!
//! ```text
//! cargo run --release -p tpq-bench --bin experiments            # all panels
//! cargo run --release -p tpq-bench --bin experiments -- fig8a   # one panel
//! cargo run --release -p tpq-bench --bin experiments -- --json all > series.json
//! ```

use std::process::ExitCode;
use tpq_bench::experiments;
use tpq_bench::Panel;

fn main() -> ExitCode {
    let mut json = false;
    let mut wanted: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--json] [fig7a fig7b fig8a fig8b fig8b-fanout \
                     fig9a fig9b ablate | all]"
                );
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        return emit(experiments::all_panels(), json);
    }
    let mut panels: Vec<Panel> = Vec::new();
    for w in &wanted {
        match w.as_str() {
            "fig7a" => panels.push(experiments::fig7a()),
            "fig7b" => panels.push(experiments::fig7b()),
            "fig8a" => panels.push(experiments::fig8a()),
            "fig8b" => panels.push(experiments::fig8b()),
            "fig8b-fanout" => panels.push(experiments::fig8b_fanout()),
            "fig9a" => panels.push(experiments::fig9a()),
            "fig9b" => panels.push(experiments::fig9b()),
            "ablate" => panels.extend(experiments::ablations()),
            other => {
                eprintln!("unknown panel '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    emit(panels, json)
}

fn emit(panels: Vec<Panel>, json: bool) -> ExitCode {
    if json {
        match serde_json::to_string_pretty(&panels) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        for p in &panels {
            println!("{}", p.to_table());
        }
    }
    ExitCode::SUCCESS
}
