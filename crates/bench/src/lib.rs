//! Shared harness for regenerating the paper's evaluation (Section 6).
//!
//! Each figure panel has an [`experiments`] module
//! function returning a set of [`Series`]; the `experiments` binary prints
//! them in the paper's row format and (optionally) as JSON, and the
//! Criterion benches under `benches/` measure the same workloads with
//! statistical rigor.

pub mod experiments;

use std::time::Instant;
use tpq_base::Json;

/// One measured point of a series.
#[derive(Debug, Clone)]
pub struct Point {
    /// The x-axis value (query size, redundancy, constraint count, …).
    pub x: u64,
    /// Measured median wall time in microseconds.
    pub micros: f64,
    /// Optional secondary measurement (e.g. tables time for Figure 7(b)).
    pub aux_micros: Option<f64>,
}

impl Point {
    /// JSON form; `aux_micros` is omitted when absent.
    pub fn to_json(&self) -> Json {
        let mut members =
            vec![("x", Json::Int(self.x as i64)), ("micros", Json::Float(self.micros))];
        if let Some(aux) = self.aux_micros {
            members.push(("aux_micros", Json::Float(aux)));
        }
        Json::object(members)
    }
}

/// A named curve, mirroring one gnuplot series of the paper's figures.
#[derive(Debug, Clone)]
pub struct Series {
    /// Label as it appears in the paper (e.g. `"100Constraints"`).
    pub label: String,
    /// Measured points in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("label", Json::Str(self.label.clone())),
            ("points", Json::Array(self.points.iter().map(Point::to_json).collect())),
        ])
    }
}

/// A whole figure panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Identifier, e.g. `"fig7a"`.
    pub id: String,
    /// Human title quoting the paper.
    pub title: String,
    /// Axis label for x.
    pub x_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Panel {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("x_label", Json::Str(self.x_label.clone())),
            ("series", Json::Array(self.series.iter().map(Series::to_json).collect())),
        ])
    }

    /// Render the panel as an aligned text table (x column + one column
    /// per series, times in microseconds).
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>16}", s.label);
        }
        let _ = writeln!(out);
        let xs: Vec<u64> =
            self.series.first().map_or(Vec::new(), |s| s.points.iter().map(|p| p.x).collect());
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>12}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => {
                        let _ = write!(out, " {:>14.1}us", p.micros);
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Measure the median wall time of `f` over `iters` runs (after one
/// warmup), in microseconds. The closure's result is returned from the
/// last run so the compiler cannot elide the work.
pub fn median_micros<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(iters >= 1);
    let mut last = f(); // warmup
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        last = f();
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    (samples[samples.len() / 2], last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_micros_returns_positive_time() {
        let (us, v) = median_micros(3, || (0..1000u64).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(us >= 0.0);
    }

    #[test]
    fn panel_table_renders_all_series() {
        let panel = Panel {
            id: "figX".into(),
            title: "demo".into(),
            x_label: "Size".into(),
            series: vec![
                Series {
                    label: "A".into(),
                    points: vec![Point { x: 1, micros: 2.0, aux_micros: None }],
                },
                Series {
                    label: "B".into(),
                    points: vec![Point { x: 1, micros: 3.0, aux_micros: None }],
                },
            ],
        };
        let t = panel.to_table();
        assert!(t.contains("figX"));
        assert!(t.contains('A') && t.contains('B'));
        assert!(t.contains("2.0us"));
    }
}
