//! Shared harness for regenerating the paper's evaluation (Section 6)
//! and for persisting the results as benchmark trajectories.
//!
//! Each figure panel has an [`experiments`] module function returning a
//! measured [`Panel`]; the `experiments` binary prints them in the
//! paper's row format, writes them as schema-versioned
//! [`trajectory::Trajectory`] files (`BENCH_<panel>.json`), and the
//! Criterion benches under `benches/` measure the same workloads with
//! statistical rigor. The `compare` binary diffs two trajectory
//! directories and flags regressions (see [`compare`]).

pub mod compare;
pub mod concurrency_panel;
pub mod degradation_panel;
pub mod experiments;
pub mod match_panel;
pub mod serve_panel;
pub mod trajectory;

/// Serialize the tests that read or clear the process-wide minimization
/// caches (the cache panel's hit-rate deltas and the degradation panel's
/// cold/restored restarts would otherwise perturb each other under the
/// parallel test runner).
#[cfg(test)]
pub(crate) fn global_cache_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

use std::time::Instant;
use tpq_base::Json;

/// Summary of repeated timing samples for one measured point: the median
/// plus the extremes, so persisted trajectories keep the variance that a
/// lone median hides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Median of the samples. For an even sample count this is the mean
    /// of the two middle samples (not the upper one).
    pub median: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Measurement {
    /// Summarize a non-empty set of samples.
    ///
    /// # Panics
    /// Panics on an empty slice or NaN samples.
    pub fn from_samples(samples: &[f64]) -> Measurement {
        assert!(!samples.is_empty(), "measurement needs at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let n = sorted.len();
        let median = if n.is_multiple_of(2) {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        } else {
            sorted[n / 2]
        };
        Measurement { median, min: sorted[0], max: sorted[n - 1] }
    }

    /// A degenerate measurement for derived values (cache hit rates,
    /// speedups, histogram quantiles) that have no per-iteration spread.
    pub fn flat(value: f64) -> Measurement {
        Measurement { median: value, min: value, max: value }
    }
}

/// One measured point of a series.
#[derive(Debug, Clone)]
pub struct Point {
    /// The x-axis value (query size, redundancy, constraint count, …).
    pub x: u64,
    /// Measured median value — wall micros for timing panels, the
    /// panel's [`Panel::unit`] otherwise.
    pub micros: f64,
    /// Smallest sample behind the median (equals `micros` for derived
    /// panels with no spread).
    pub min_micros: f64,
    /// Largest sample behind the median.
    pub max_micros: f64,
    /// Optional secondary measurement (e.g. tables time for Figure 7(b)).
    pub aux_micros: Option<f64>,
}

impl Point {
    /// A point from a repeated-sample [`Measurement`].
    pub fn timed(x: u64, m: Measurement) -> Point {
        Point { x, micros: m.median, min_micros: m.min, max_micros: m.max, aux_micros: None }
    }

    /// A point for a derived value with no per-iteration spread.
    pub fn flat(x: u64, value: f64) -> Point {
        Point { x, micros: value, min_micros: value, max_micros: value, aux_micros: None }
    }

    /// JSON form; `aux_micros` is omitted when absent.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("x", Json::Int(self.x as i64)),
            ("micros", Json::Float(self.micros)),
            ("min_micros", Json::Float(self.min_micros)),
            ("max_micros", Json::Float(self.max_micros)),
        ];
        if let Some(aux) = self.aux_micros {
            members.push(("aux_micros", Json::Float(aux)));
        }
        Json::object(members)
    }

    /// Parse the [`Point::to_json`] form. `min_micros`/`max_micros`
    /// default to the median when absent, so pre-trajectory JSON (which
    /// only carried the median) still loads.
    pub fn from_json(json: &Json) -> Result<Point, String> {
        let x = json
            .get("x")
            .and_then(Json::as_i64)
            .ok_or_else(|| "point is missing integer 'x'".to_owned())?;
        let micros = json
            .get("micros")
            .and_then(Json::as_f64)
            .ok_or_else(|| "point is missing numeric 'micros'".to_owned())?;
        let min_micros = json.get("min_micros").and_then(Json::as_f64).unwrap_or(micros);
        let max_micros = json.get("max_micros").and_then(Json::as_f64).unwrap_or(micros);
        let aux_micros = json.get("aux_micros").and_then(Json::as_f64);
        Ok(Point { x: x as u64, micros, min_micros, max_micros, aux_micros })
    }
}

/// A named curve, mirroring one gnuplot series of the paper's figures.
#[derive(Debug, Clone)]
pub struct Series {
    /// Label as it appears in the paper (e.g. `"100Constraints"`).
    pub label: String,
    /// Measured points in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("label", Json::Str(self.label.clone())),
            ("points", Json::Array(self.points.iter().map(Point::to_json).collect())),
        ])
    }

    /// Parse the [`Series::to_json`] form.
    pub fn from_json(json: &Json) -> Result<Series, String> {
        let label = json
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| "series is missing 'label'".to_owned())?
            .to_owned();
        let points = json
            .get("points")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("series '{label}' is missing 'points'"))?
            .iter()
            .map(Point::from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("series '{label}': {e}"))?;
        Ok(Series { label, points })
    }
}

/// Unit of a timing panel's point values (wall microseconds).
pub const UNIT_MICROS: &str = "us";
/// Unit of a cache-hit-rate panel (0–100).
pub const UNIT_PERCENT: &str = "percent";
/// Unit of a speedup panel (dimensionless, ×).
pub const UNIT_RATIO: &str = "ratio";
/// Unit of a throughput panel (document nodes matched per second).
pub const UNIT_THROUGHPUT: &str = "nodes_per_sec";

/// A whole figure panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Identifier, e.g. `"fig7a"`.
    pub id: String,
    /// Human title quoting the paper.
    pub title: String,
    /// Axis label for x.
    pub x_label: String,
    /// What the point values measure: [`UNIT_MICROS`] (lower is better),
    /// [`UNIT_PERCENT`], [`UNIT_RATIO`] or [`UNIT_THROUGHPUT`] (higher is
    /// better).
    pub unit: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Panel {
    /// Whether smaller point values are better for this panel's unit
    /// (true for wall times, false for hit rates, speedups and
    /// throughputs).
    pub fn lower_is_better(&self) -> bool {
        self.unit != UNIT_PERCENT && self.unit != UNIT_RATIO && self.unit != UNIT_THROUGHPUT
    }

    /// JSON form.
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("x_label", Json::Str(self.x_label.clone())),
            ("unit", Json::Str(self.unit.clone())),
            ("series", Json::Array(self.series.iter().map(Series::to_json).collect())),
        ])
    }

    /// Parse the [`Panel::to_json`] form (`unit` defaults to micros for
    /// pre-trajectory JSON).
    pub fn from_json(json: &Json) -> Result<Panel, String> {
        let id = json
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| "panel is missing 'id'".to_owned())?
            .to_owned();
        let title = json.get("title").and_then(Json::as_str).unwrap_or("").to_owned();
        let x_label = json.get("x_label").and_then(Json::as_str).unwrap_or("x").to_owned();
        let unit = json.get("unit").and_then(Json::as_str).unwrap_or(UNIT_MICROS).to_owned();
        let series = json
            .get("series")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("panel '{id}' is missing 'series'"))?
            .iter()
            .map(Series::from_json)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("panel '{id}': {e}"))?;
        Ok(Panel { id, title, x_label, unit, series })
    }

    /// Render the panel as an aligned text table (x column + one column
    /// per series, values in the panel's unit).
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>16}", s.label);
        }
        let _ = writeln!(out);
        let suffix = if self.unit == UNIT_MICROS { "us" } else { "" };
        let xs: Vec<u64> =
            self.series.first().map_or(Vec::new(), |s| s.points.iter().map(|p| p.x).collect());
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>12}");
            for s in &self.series {
                match s.points.get(i) {
                    Some(p) => {
                        let _ = write!(out, " {:>14.1}{suffix:<2}", p.micros);
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Measure `f` over `iters` runs (after one warmup) and summarize the
/// wall times in microseconds. The closure's result is returned from the
/// last run so the compiler cannot elide the work.
pub fn measure_micros<T>(iters: usize, mut f: impl FnMut() -> T) -> (Measurement, T) {
    assert!(iters >= 1);
    let mut last = f(); // warmup
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        last = f();
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    (Measurement::from_samples(&samples), last)
}

/// Median wall time of `f` over `iters` runs (after one warmup), in
/// microseconds. For an even `iters` the two middle samples are averaged.
pub fn median_micros<T>(iters: usize, f: impl FnMut() -> T) -> (f64, T) {
    let (m, last) = measure_micros(iters, f);
    (m.median, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_micros_returns_positive_time() {
        let (us, v) = median_micros(3, || (0..1000u64).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(us >= 0.0);
    }

    #[test]
    fn even_sample_counts_average_the_middle_pair() {
        let m = Measurement::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(m.median, 2.5, "even count averages the two middle samples");
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 4.0);
        let odd = Measurement::from_samples(&[5.0, 1.0, 3.0]);
        assert_eq!(odd.median, 3.0);
        let one = Measurement::from_samples(&[7.0]);
        assert_eq!((one.median, one.min, one.max), (7.0, 7.0, 7.0));
    }

    #[test]
    fn measure_micros_orders_min_median_max() {
        let (m, _) = measure_micros(6, || std::hint::black_box((0..500u64).sum::<u64>()));
        assert!(m.min <= m.median && m.median <= m.max);
        assert!(m.min >= 0.0);
    }

    #[test]
    fn point_json_round_trips_with_min_max() {
        let p = Point { x: 3, micros: 2.5, min_micros: 2.0, max_micros: 4.0, aux_micros: None };
        let parsed = Point::from_json(&p.to_json()).unwrap();
        assert_eq!(parsed.x, 3);
        assert_eq!((parsed.micros, parsed.min_micros, parsed.max_micros), (2.5, 2.0, 4.0));
        // Median-only legacy points still parse, min/max degenerate.
        let legacy = Json::object(vec![("x", Json::Int(1)), ("micros", Json::Float(9.0))]);
        let parsed = Point::from_json(&legacy).unwrap();
        assert_eq!((parsed.min_micros, parsed.max_micros), (9.0, 9.0));
        assert!(Point::from_json(&Json::object(vec![("x", Json::Int(1))])).is_err());
    }

    #[test]
    fn panel_table_renders_all_series() {
        let panel = Panel {
            id: "figX".into(),
            title: "demo".into(),
            x_label: "Size".into(),
            unit: UNIT_MICROS.into(),
            series: vec![
                Series { label: "A".into(), points: vec![Point::flat(1, 2.0)] },
                Series { label: "B".into(), points: vec![Point::flat(1, 3.0)] },
            ],
        };
        let t = panel.to_table();
        assert!(t.contains("figX"));
        assert!(t.contains('A') && t.contains('B'));
        assert!(t.contains("2.0us"));
    }

    #[test]
    fn panel_json_round_trips() {
        let panel = Panel {
            id: "cache".into(),
            title: "hit rates".into(),
            x_label: "Round".into(),
            unit: UNIT_PERCENT.into(),
            series: vec![Series {
                label: "BatchMemo".into(),
                points: vec![Point::flat(1, 50.0), Point::flat(2, 100.0)],
            }],
        };
        assert!(!panel.lower_is_better(), "percent panels want higher values");
        let parsed = Panel::from_json(&panel.to_json()).unwrap();
        assert_eq!(parsed.id, "cache");
        assert_eq!(parsed.unit, UNIT_PERCENT);
        assert_eq!(parsed.series[0].points.len(), 2);
        assert_eq!(parsed.series[0].points[1].micros, 100.0);
    }
}
