//! The serve-degradation panel: how gracefully `tpq serve` degrades
//! under overload, and how much a warm-restart snapshot buys at boot.
//!
//! Four series, all in percent (higher is better), all against live
//! loopback servers:
//!
//! * **cold-hit** — engine-memo hit rate per replay round of a Zipf
//!   request mix, starting from empty caches: round 1 earns only the
//!   mix's duplicate rate, later rounds converge to 100%.
//! * **restored-hit** — the same replay after a snapshot → clear →
//!   restore cycle: round 1 starts at (not climbs to) 100%, which is the
//!   measurable payoff of `--snapshot` / `--restore`.
//! * **shed-rate** — percent of an 8-request burst shed while one plug
//!   request holds the single worker, versus the admission-queue depth.
//!   The arithmetic is deterministic: a queue of depth *q* admits the
//!   plug plus `q - 1` burst requests, shedding `8 - (q - 1)`.
//! * **p99-retention** — `100 · p99(1 client) / p99(c clients)` over a
//!   cache-warm mix: how much tail latency survives added concurrency
//!   (100 = no degradation). Encoding the ratio baseline-over-candidate
//!   keeps "higher is better", matching the percent unit's compare
//!   direction.

use crate::{experiments::ExpConfig, Panel, Point, Series};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpq_base::Json;
use tpq_obs::Histogram;
use tpq_serve::{global_types, restore_snapshot, write_snapshot, ServeConfig, Server};
use tpq_workload::{zipf_request_mix, MixSpec};

/// Replay rounds for the warmup curves.
const ROUNDS: u64 = 3;
/// Admission-queue depths for the shed series.
const DEPTHS: [u64; 3] = [1, 2, 4];
/// Burst size for the shed series.
const BURST: usize = 8;
/// Client counts for the p99-retention series.
const CLIENTS: [u64; 3] = [1, 2, 4];

/// Boot a loopback server and return its pieces.
fn boot(config: ServeConfig) -> (SocketAddr, tpq_serve::ServeHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".to_owned(), ..config })
        .expect("bind loopback serve port");
    let addr = server.local_addr().expect("bound server has an address");
    let handle = server.handle();
    let thread = std::thread::spawn(move || {
        server.run().expect("bench server run");
    });
    (addr, handle, thread)
}

fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect to bench server");
    stream.set_nodelay(true).expect("set TCP_NODELAY");
    let reader = BufReader::new(stream.try_clone().expect("clone socket"));
    (reader, stream)
}

/// Replay `lines` once on one connection; return `(hits, total)` from the
/// per-response `stats.cache_hit` field.
fn replay_counting_hits(addr: SocketAddr, lines: &[String]) -> (u64, u64) {
    let (mut reader, mut writer) = connect(addr);
    let mut hits = 0;
    let mut response = String::new();
    for line in lines {
        writeln!(writer, "{line}").expect("send request");
        response.clear();
        reader.read_line(&mut response).expect("read response");
        let json = Json::parse(response.trim_end()).expect("response is JSON");
        assert!(json.get("error").is_none(), "mix request rejected: {response}");
        if json.get("stats").and_then(|s| s.get("cache_hit")).and_then(Json::as_bool) == Some(true)
        {
            hits += 1;
        }
    }
    (hits, lines.len() as u64)
}

/// Hit-rate percent per round of replaying `lines` against a fresh
/// server over the process-wide caches *as they currently are*.
fn hit_rate_rounds(lines: &[String]) -> Vec<Point> {
    let (addr, handle, thread) = boot(ServeConfig { jobs: 2, ..ServeConfig::default() });
    let points = (1..=ROUNDS)
        .map(|round| {
            let (hits, total) = replay_counting_hits(addr, lines);
            Point::flat(round, 100.0 * hits as f64 / total as f64)
        })
        .collect();
    handle.shutdown();
    thread.join().expect("server thread");
    points
}

/// A pattern far too large to minimize inside its 150ms deadline: sent to
/// a `jobs = 1` server it occupies the only worker for the whole
/// deadline, then answers a typed `budget` error.
fn plug_line() -> String {
    let chain: String = (0..30).map(|d| format!("/DegPlugT{}", d % 8)).collect();
    let mut q = "DegPlugRoot*".to_owned();
    for _ in 0..60 {
        q.push('[');
        q.push_str(&chain);
        q.push(']');
    }
    Json::object(vec![("query", Json::Str(q)), ("deadline_ms", Json::Int(150))]).to_string_compact()
}

/// Shed percent of an [`BURST`]-request burst at one queue depth.
fn shed_rate_at_depth(depth: u64) -> f64 {
    let (addr, handle, thread) =
        boot(ServeConfig { jobs: 1, queue_depth: depth as usize, ..ServeConfig::default() });
    // Plug the worker, give the server a beat to start executing it...
    let (mut plug_reader, mut plug_writer) = connect(addr);
    writeln!(plug_writer, "{}", plug_line()).expect("send plug");
    std::thread::sleep(Duration::from_millis(50));
    // ...then burst concurrently and count the typed sheds.
    let probe =
        Json::object(vec![("query", Json::Str("DegShedA*[/DegShedB][/DegShedB]".to_owned()))])
            .to_string_compact();
    let shed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..BURST)
            .map(|_| {
                let probe = &probe;
                scope.spawn(move || {
                    let (mut reader, mut writer) = connect(addr);
                    writeln!(writer, "{probe}").expect("send probe");
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("read probe response");
                    let json = Json::parse(response.trim_end()).expect("probe response JSON");
                    match json.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str) {
                        Some("overloaded") => true,
                        None => false,
                        Some(kind) => panic!("probe answered unexpected error kind {kind}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(false_positive_free_join).filter(|&was_shed| was_shed).count()
    });
    // Drain the plug's budget error so the connection closes cleanly.
    let mut plug_response = String::new();
    plug_reader.read_line(&mut plug_response).expect("read plug response");
    handle.shutdown();
    thread.join().expect("server thread");
    100.0 * shed as f64 / BURST as f64
}

/// Join a scoped probe thread, propagating its panic.
fn false_positive_free_join(h: std::thread::ScopedJoinHandle<'_, bool>) -> bool {
    match h.join() {
        Ok(was_shed) => was_shed,
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// p99 round-trip latency of replaying warm `lines` at `clients`
/// concurrent connections.
fn p99_at(addr: SocketAddr, lines: &[String], clients: u64) -> f64 {
    let hist = Arc::new(Histogram::default());
    let chunk = lines.len().div_ceil(clients as usize);
    std::thread::scope(|scope| {
        for slice in lines.chunks(chunk) {
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                let (mut reader, mut writer) = connect(addr);
                let mut response = String::new();
                // Unmeasured warmup round trip: connection setup is not
                // request service time.
                writeln!(writer, "PING").expect("send warmup ping");
                reader.read_line(&mut response).expect("read warmup pong");
                for line in slice {
                    let t0 = Instant::now();
                    writeln!(writer, "{line}").expect("send request");
                    response.clear();
                    reader.read_line(&mut response).expect("read response");
                    hist.record(t0.elapsed().as_micros() as u64);
                }
            });
        }
    });
    hist.quantile(0.99) as f64
}

/// The serve-degradation panel. See the module docs for the four series.
pub fn serve_degradation(cfg: &ExpConfig) -> Panel {
    let mix = zipf_request_mix(&MixSpec {
        pool: 16,
        requests: if cfg.quick { 48 } else { 96 },
        skew: 1.0,
        seed: cfg.seed,
    });
    let lines: Vec<String> = mix
        .queries
        .iter()
        .map(|q| {
            Json::object(vec![
                ("query", Json::Str(q.clone())),
                ("constraints", Json::Str(mix.constraints.clone())),
            ])
            .to_string_compact()
        })
        .collect();

    // Warmup curves: cold first (empty caches), then snapshot what the
    // cold run warmed, clear, restore, and measure again.
    tpq_core::clear_shared_caches();
    let cold = hit_rate_rounds(&lines);
    let snap = std::env::temp_dir()
        .join(format!("tpq-bench-degradation-{}", std::process::id()))
        .join("warm.json");
    std::fs::create_dir_all(snap.parent().expect("snapshot dir")).expect("create snapshot dir");
    {
        let types = global_types().lock().expect("types lock");
        write_snapshot(&snap, &types).expect("write warm snapshot");
    }
    tpq_core::clear_shared_caches();
    {
        let mut types = global_types().lock().expect("types lock");
        restore_snapshot(&snap, &mut types).expect("restore warm snapshot");
    }
    let restored = hit_rate_rounds(&lines);
    let _ = std::fs::remove_file(&snap);

    // Load shedding: deterministic shed arithmetic per queue depth.
    let shed_points: Vec<Point> =
        DEPTHS.iter().map(|&d| Point::flat(d, shed_rate_at_depth(d))).collect();

    // Tail-latency retention vs concurrency over the (now warm) mix.
    let (addr, handle, thread) = boot(ServeConfig { jobs: 2, ..ServeConfig::default() });
    let (_, _) = replay_counting_hits(addr, &lines); // ensure warm
    let baseline = p99_at(addr, &lines, 1).max(1.0);
    let mut retention_points = vec![Point::flat(1, 100.0)];
    for &c in &CLIENTS[1..] {
        retention_points.push(Point::flat(c, 100.0 * baseline / p99_at(addr, &lines, c).max(1.0)));
    }
    handle.shutdown();
    thread.join().expect("server thread");

    Panel {
        id: "serve-degradation".into(),
        title: "tpq serve under stress: warmup hit rates (cold vs restored), shed rate vs \
                queue depth, p99 retention vs clients"
            .into(),
        x_label: "Round / queue depth / clients".into(),
        unit: crate::UNIT_PERCENT.into(),
        series: vec![
            Series { label: "cold-hit".into(), points: cold },
            Series { label: "restored-hit".into(), points: restored },
            Series { label: "shed-rate".into(), points: shed_points },
            Series { label: "p99-retention".into(), points: retention_points },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_panel_shapes_and_invariants() {
        let _guard = crate::global_cache_test_lock();
        let p = serve_degradation(&ExpConfig::quick());
        assert_eq!(p.id, "serve-degradation");
        assert_eq!(p.unit, crate::UNIT_PERCENT);
        assert_eq!(p.series.len(), 4);
        let by_label = |label: &str| {
            p.series.iter().find(|s| s.label == label).unwrap_or_else(|| panic!("{label}"))
        };

        // The acceptance criterion of the warm-restart snapshot: the
        // restored server's FIRST round beats the cold server's.
        let cold = by_label("cold-hit");
        let restored = by_label("restored-hit");
        assert!(
            restored.points[0].micros > cold.points[0].micros,
            "restored round 1 ({:.1}%) must beat cold round 1 ({:.1}%)",
            restored.points[0].micros,
            cold.points[0].micros
        );
        assert!(
            restored.points[0].micros > 99.0,
            "a restored memo answers the whole old working set: {:.1}%",
            restored.points[0].micros
        );
        // Both curves converge once warm.
        assert!(cold.points.last().unwrap().micros > 99.0);

        // Shed arithmetic: depth q admits the plug + (q-1) probes.
        let shed = by_label("shed-rate");
        for (pt, depth) in shed.points.iter().zip(DEPTHS) {
            let expected = 100.0 * (BURST as u64 + 1 - depth) as f64 / BURST as f64;
            assert!(
                (pt.micros - expected).abs() < 1e-9,
                "depth {depth}: shed {:.1}% != expected {expected:.1}%",
                pt.micros
            );
        }

        // Retention is anchored at 100 for one client and stays positive.
        let retention = by_label("p99-retention");
        assert!((retention.points[0].micros - 100.0).abs() < 1e-9);
        for pt in &retention.points {
            assert!(pt.micros > 0.0);
        }
    }
}
