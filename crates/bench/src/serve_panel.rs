//! The serve-latency panel: boot a real `tpq serve` [`tpq_serve::Server`]
//! on a loopback port, replay a Zipf-skewed request mix
//! ([`tpq_workload::zipf_request_mix`]) at increasing client concurrency,
//! and report request-latency quantiles.
//!
//! Per-request round-trip times are recorded into the same log-scale
//! [`tpq_obs::Histogram`] the server feeds from `serve.request`, and the
//! p50/p95/p99 series are extracted with [`tpq_obs::Histogram::quantile`]
//! — so the panel's numbers quantize exactly like the METRICS exposition
//! and the STATS report do. Recording client-side (instead of scraping
//! the server's own `serve.request` histogram) keeps concurrency levels
//! independent: the server histogram is cumulative across the whole
//! process, which would smear level 1's latencies into level 4's.
//!
//! The server runs with its defaults, which means the flight recorder
//! and the rolling RED window are **on** — every measured request pays
//! the full per-request observability cost (phase timestamps, window
//! bucket update, ring push). That is deliberate: the CI compare gate
//! on this panel therefore regresses the recorder's overhead together
//! with the request path, and a recorder change that slows requests
//! down fails the same ±threshold check as any other serve regression.
//! The panel asserts the recorder actually saw every request so the
//! gate can't silently measure a recorder-less server.

use crate::{experiments::ExpConfig, Panel, Point, Series};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;
use tpq_base::Json;
use tpq_obs::Histogram;
use tpq_serve::{ServeConfig, Server};
use tpq_workload::{zipf_request_mix, MixSpec};

/// Client threads per concurrency level.
const LEVELS: [u64; 3] = [1, 2, 4];

/// Serve-latency quantiles vs client concurrency, measured against a live
/// loopback server replaying a Zipf(1.0) mix of Figure-7 queries.
pub fn serve_latency(cfg: &ExpConfig) -> Panel {
    let mix = zipf_request_mix(&MixSpec {
        pool: if cfg.quick { 8 } else { 24 },
        requests: if cfg.quick { 120 } else { 400 },
        skew: 1.0,
        seed: cfg.seed,
    });
    // Pre-render the request lines once; every client sends a slice.
    let lines: Vec<String> = mix
        .queries
        .iter()
        .map(|q| {
            Json::object(vec![
                ("query", Json::Str(q.clone())),
                ("constraints", Json::Str(mix.constraints.clone())),
            ])
            .to_string_compact()
        })
        .collect();

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        jobs: 2,
        max_conns: 32,
        handle_signals: false,
        ..ServeConfig::default()
    })
    .expect("bind loopback serve port");
    let addr = server.local_addr().expect("bound server has an address");
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    let mut p50 = Vec::new();
    let mut p95 = Vec::new();
    let mut p99 = Vec::new();
    for &level in &LEVELS {
        let hist = Arc::new(Histogram::default());
        let chunk = lines.len().div_ceil(level as usize);
        std::thread::scope(|scope| {
            for slice in lines.chunks(chunk) {
                let hist = Arc::clone(&hist);
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect to bench server");
                    // One write syscall per request and no Nagle batching:
                    // otherwise loopback request-response pays the classic
                    // ~40ms Nagle/delayed-ACK stall per round trip.
                    stream.set_nodelay(true).expect("set TCP_NODELAY");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
                    let mut writer = stream;
                    let mut response = String::new();
                    // One unmeasured warmup round trip: the first request
                    // on a fresh connection pays the server's accept-poll
                    // latency (tens of ms), which is connection setup, not
                    // request service time.
                    writer.write_all(b"PING\n").expect("send warmup ping");
                    reader.read_line(&mut response).expect("read warmup pong");
                    for line in slice {
                        let framed = format!("{line}\n");
                        let t0 = Instant::now();
                        writer.write_all(framed.as_bytes()).expect("send request");
                        response.clear();
                        reader.read_line(&mut response).expect("read response");
                        hist.record(t0.elapsed().as_micros() as u64);
                        let json = Json::parse(&response).expect("response is JSON");
                        assert!(
                            json.get("error").is_none(),
                            "server rejected a mix request: {response}"
                        );
                    }
                });
            }
        });
        assert_eq!(hist.count(), lines.len() as u64, "every request must be measured");
        p50.push(Point::flat(level, hist.quantile(0.50) as f64));
        p95.push(Point::flat(level, hist.quantile(0.95) as f64));
        p99.push(Point::flat(level, hist.quantile(0.99) as f64));
    }

    // Confirm the observability plane was live for the whole run: the
    // flight recorder must have recorded exactly one record per measured
    // request (verbs and warmup PINGs are never recorded), otherwise the
    // quantiles above measured a server the production path never runs.
    {
        let stream = TcpStream::connect(addr).expect("connect stats probe");
        let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
        let mut writer = stream;
        writer.write_all(b"STATS\n").expect("send stats probe");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read stats");
        let stats = Json::parse(&response).expect("stats is JSON");
        let recorded = stats
            .get("flight")
            .and_then(|f| f.get("recorded"))
            .and_then(Json::as_i64)
            .expect("flight block in STATS");
        assert_eq!(
            recorded as u64,
            (lines.len() * LEVELS.len()) as u64,
            "flight recorder must cover every measured request"
        );
    }

    handle.shutdown();
    let summary = server_thread.join().expect("server thread").expect("server run");
    assert!(summary.requests_ok >= (lines.len() * LEVELS.len()) as u64);

    Panel {
        id: "serve-latency".into(),
        title: "tpq serve: request latency quantiles vs client concurrency (zipf mix)".into(),
        x_label: "Clients".into(),
        unit: crate::UNIT_MICROS.into(),
        series: vec![
            Series { label: "p50".into(), points: p50 },
            Series { label: "p95".into(), points: p95 },
            Series { label: "p99".into(), points: p99 },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_panel_measures_all_levels() {
        let p = serve_latency(&ExpConfig::quick());
        assert_eq!(p.id, "serve-latency");
        assert_eq!(p.series.len(), 3);
        for s in &p.series {
            assert_eq!(s.points.len(), LEVELS.len());
            for pt in &s.points {
                assert!(pt.micros > 0.0, "{} at {} clients measured 0us", s.label, pt.x);
            }
        }
        // Quantiles from one histogram are ordered: p50 <= p95 <= p99.
        for i in 0..LEVELS.len() {
            assert!(p.series[0].points[i].micros <= p.series[1].points[i].micros);
            assert!(p.series[1].points[i].micros <= p.series[2].points[i].micros);
        }
    }
}
