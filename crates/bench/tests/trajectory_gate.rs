//! End-to-end test of the perf gate's file path: write trajectories the
//! way `experiments --out-dir` does, load both directories back the way
//! `compare` does, and check the gate's verdicts on a self-compare and on
//! a synthetic regression.

use std::path::PathBuf;
use tpq_bench::compare::{compare, PanelStatus, Thresholds};
use tpq_bench::experiments::ExpConfig;
use tpq_bench::trajectory::{load_dir, Trajectory, SCHEMA_VERSION};
use tpq_bench::{Panel, Point, Series, UNIT_MICROS, UNIT_PERCENT};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tpq-gate-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn panel(id: &str, unit: &str, values: &[(u64, f64)]) -> Panel {
    Panel {
        id: id.into(),
        title: format!("{id} test panel"),
        x_label: "x".into(),
        unit: unit.into(),
        series: vec![Series {
            label: "main".into(),
            points: values.iter().map(|&(x, v)| Point::flat(x, v)).collect(),
        }],
    }
}

#[test]
fn self_compare_of_written_trajectories_passes() {
    let dir = scratch("self");
    let cfg = ExpConfig::quick();
    for p in [
        panel("fig7a", UNIT_MICROS, &[(10, 150.0), (20, 400.0)]),
        panel("cache", UNIT_PERCENT, &[(1, 75.0), (2, 100.0)]),
    ] {
        Trajectory::new(p, &cfg).write_to(&dir).unwrap();
    }
    let loaded = load_dir(&dir).unwrap();
    assert_eq!(loaded.len(), 2);
    assert!(loaded.iter().all(|t| t.schema_version == SCHEMA_VERSION && t.quick));
    // The directory listing is sorted by panel id regardless of FS order.
    assert_eq!(loaded[0].panel.id, "cache");

    let report = compare(&loaded, &loaded, &Thresholds::default());
    assert!(!report.has_failures(), "self-compare must pass the gate");
    assert_eq!(report.count(PanelStatus::Unchanged), 2);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn synthetic_regression_fails_the_gate() {
    let base_dir = scratch("base");
    let cand_dir = scratch("cand");
    let cfg = ExpConfig::quick();
    Trajectory::new(panel("fig9a", UNIT_MICROS, &[(10, 200.0), (20, 800.0)]), &cfg)
        .write_to(&base_dir)
        .unwrap();
    // Candidate: 3x slowdown at x=20, plus the fig9a file is accompanied
    // by a brand-new panel (which alone must NOT fail the gate).
    Trajectory::new(panel("fig9a", UNIT_MICROS, &[(10, 210.0), (20, 2400.0)]), &cfg)
        .write_to(&cand_dir)
        .unwrap();
    Trajectory::new(panel("serve-latency", UNIT_MICROS, &[(1, 900.0)]), &cfg)
        .write_to(&cand_dir)
        .unwrap();

    let baseline = load_dir(&base_dir).unwrap();
    let candidate = load_dir(&cand_dir).unwrap();
    let report = compare(&baseline, &candidate, &Thresholds::default());
    assert!(report.has_failures());
    assert_eq!(report.count(PanelStatus::Regressed), 1);
    assert_eq!(report.count(PanelStatus::New), 1);
    let md = report.to_markdown();
    assert!(md.contains("fig9a") && md.contains("regressed"), "{md}");
    assert!(md.contains("+200.0%"), "worst point is the 3x slowdown: {md}");

    // The same slowdown passes under a loose per-panel override — the CI
    // quick gate's escape hatch for noisy panels.
    let loose = Thresholds { per_panel: vec![("fig9a".to_owned(), 3.0)], ..Thresholds::default() };
    assert!(!compare(&baseline, &candidate, &loose).has_failures());

    std::fs::remove_dir_all(&base_dir).unwrap();
    std::fs::remove_dir_all(&cand_dir).unwrap();
}

#[test]
fn missing_candidate_panel_fails_even_when_others_improve() {
    let cfg = ExpConfig::quick();
    let baseline = vec![
        Trajectory::new(panel("a", UNIT_MICROS, &[(1, 1000.0)]), &cfg),
        Trajectory::new(panel("b", UNIT_MICROS, &[(1, 1000.0)]), &cfg),
    ];
    let candidate = vec![Trajectory::new(panel("a", UNIT_MICROS, &[(1, 400.0)]), &cfg)];
    let report = compare(&baseline, &candidate, &Thresholds::default());
    assert_eq!(report.count(PanelStatus::Improved), 1);
    assert_eq!(report.count(PanelStatus::Missing), 1);
    assert!(report.has_failures(), "a vanished panel fails the gate");
}
