//! Figure 7(b): how much of ACIM's time goes into building the images and
//! ancestor/descendant tables (the paper reports ≈ 60 %).
//!
//! Criterion measures the end-to-end time; the table fraction itself is
//! asserted from the instrumented stats and printed once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpq_core::{acim_closed, MinimizeStats};
use tpq_workload::ic_chain_query;

fn bench(c: &mut Criterion) {
    let chain = ic_chain_query(101);
    let closed = chain.constraints.closure();

    // Print the measured tables fraction once, for the record.
    let mut stats = MinimizeStats::default();
    let out = acim_closed(&chain.pattern, &closed, &mut stats);
    assert_eq!(out.size(), 1);
    eprintln!("fig7b: tables time fraction = {:.1}% of total", stats.tables_fraction() * 100.0);

    let mut group = c.benchmark_group("fig7b_acim_tables");
    group.sample_size(10);
    for nodes in [41usize, 71, 101] {
        let chain = ic_chain_query(nodes);
        let closed = chain.constraints.closure();
        group.bench_with_input(BenchmarkId::new("acim_total", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut stats = MinimizeStats::default();
                acim_closed(&chain.pattern, &closed, &mut stats)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
