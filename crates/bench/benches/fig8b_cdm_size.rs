//! Figure 8(b): CDM time vs query size for right-deep, bushy and wider
//! fanout shapes (every edge IC-redundant; only the root survives), plus
//! the fanout sweep the paper discusses alongside it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpq_core::{cdm_closed, MinimizeStats};
use tpq_workload::shaped_ic_query;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8b_cdm_size");
    group.sample_size(20);
    for (label, fanout) in [("right_deep", 1usize), ("bushy", 2), ("fanout4", 4)] {
        for nodes in [40usize, 90, 140] {
            let q = shaped_ic_query(nodes, fanout);
            let closed = q.constraints.closure();
            group.bench_with_input(BenchmarkId::new(label, nodes), &nodes, |b, _| {
                b.iter(|| {
                    let mut stats = MinimizeStats::default();
                    cdm_closed(&q.pattern, &closed, &mut stats)
                })
            });
        }
    }
    // Fanout sweep at fixed size.
    for fanout in [2usize, 6, 12] {
        let q = shaped_ic_query(121, fanout);
        let closed = q.constraints.closure();
        group.bench_with_input(BenchmarkId::new("fanout_sweep_n121", fanout), &fanout, |b, _| {
            b.iter(|| {
                let mut stats = MinimizeStats::default();
                cdm_closed(&q.pattern, &closed, &mut stats)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
