//! Figure 8(a): CDM time is independent of the size of the constraint
//! repository (127-node query; constraints mention query types but every
//! rule check is a hash probe keyed by a type pair).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpq_constraints::{Constraint, ConstraintSet};
use tpq_core::{cdm_closed, MinimizeStats};
use tpq_pattern::NodeId;
use tpq_workload::ic_chain_query;

fn relevant_noop_constraints(chain: &tpq_workload::ShapedQuery, k: usize) -> ConstraintSet {
    // `->>` constraints over non-adjacent chain types: relevant (the types
    // occur in the query) but no local rule fires on a c-edge chain.
    let mut ics = ConstraintSet::new();
    let mut produced = 0;
    'outer: for gap in 2u32..127 {
        for i in 0..(127 - gap) {
            if produced == k {
                break 'outer;
            }
            let a = chain.pattern.node(NodeId(i)).primary;
            let b = chain.pattern.node(NodeId(i + gap)).primary;
            if ics.insert(Constraint::RequiredDescendant(a, b)) {
                produced += 1;
            }
        }
    }
    ics
}

fn bench(c: &mut Criterion) {
    let chain = ic_chain_query(127);
    let mut group = c.benchmark_group("fig8a_cdm_constraints");
    group.sample_size(20);
    for k in [0usize, 50, 100, 150] {
        let closed = relevant_noop_constraints(&chain, k).closure();
        group.bench_with_input(BenchmarkId::new("cdm", k), &k, |b, _| {
            b.iter(|| {
                let mut stats = MinimizeStats::default();
                cdm_closed(&chain.pattern, &closed, &mut stats)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
