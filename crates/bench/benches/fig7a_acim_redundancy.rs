//! Figure 7(a): ACIM time on a 101-node query, varying the total
//! redundancy (`degree × redundant_nodes`) and the number of relevant
//! constraints (0 / 50 / 100 / 150).
//!
//! Paper shape: roughly flat in the redundancy product at fixed size;
//! grows linearly with the number of constraints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpq_core::{acim_closed, MinimizeStats};
use tpq_workload::{redundancy_query, relevant_constraints, RedundancySpec};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_acim_redundancy");
    group.sample_size(10);
    for k in [0usize, 50, 100, 150] {
        for product in [20u64, 50, 90] {
            let degree = 2;
            let q = redundancy_query(&RedundancySpec {
                total_nodes: 101,
                redundant_nodes: product as usize / degree,
                degree,
            });
            let ics = relevant_constraints(&q, k).closure();
            group.bench_with_input(
                BenchmarkId::new(format!("{k}constraints"), product),
                &product,
                |b, _| {
                    b.iter(|| {
                        let mut stats = MinimizeStats::default();
                        acim_closed(&q.pattern, &ics, &mut stats)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
