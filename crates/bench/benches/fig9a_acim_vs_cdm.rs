//! Figure 9(a): ACIM vs CDM on queries where both remove the same set of
//! nodes (an IC chain — everything but the root). Paper shape: CDM is
//! substantially faster and the gap widens with query size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpq_core::{acim_closed, cdm_closed, MinimizeStats};
use tpq_workload::ic_chain_query;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9a_acim_vs_cdm");
    group.sample_size(10);
    for nodes in [20usize, 60, 100] {
        let q = ic_chain_query(nodes);
        let closed = q.constraints.closure();
        group.bench_with_input(BenchmarkId::new("acim", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut stats = MinimizeStats::default();
                acim_closed(&q.pattern, &closed, &mut stats)
            })
        });
        group.bench_with_input(BenchmarkId::new("cdm", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut stats = MinimizeStats::default();
                cdm_closed(&q.pattern, &closed, &mut stats)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
