//! Figure 9(b): direct ACIM vs CDM-prefilter-then-ACIM on queries where
//! CDM removes half of what ACIM can. Paper shape: the combined strategy
//! always wins and the advantage grows with query size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpq_core::{minimize_with, Strategy};
use tpq_workload::prefilter_query;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9b_prefilter");
    group.sample_size(10);
    for nodes in [22usize, 61, 100] {
        let k = (nodes - 1) / 3;
        let q = prefilter_query(k);
        group.bench_with_input(BenchmarkId::new("acim_direct", nodes), &nodes, |b, _| {
            b.iter(|| minimize_with(&q.pattern, &q.constraints, Strategy::AcimOnly))
        });
        group.bench_with_input(BenchmarkId::new("cdm_then_acim", nodes), &nodes, |b, _| {
            b.iter(|| minimize_with(&q.pattern, &q.constraints, Strategy::CdmThenAcim))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
