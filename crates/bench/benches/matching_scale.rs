//! Substrate bench: pattern evaluation cost vs document size.
//!
//! Minimization exists because matching cost scales with pattern size ×
//! document size; this bench pins the document-side scaling of the
//! indexed evaluator (build DocIndex + candidate pruning + feasibility)
//! and the payoff of running the minimized pattern instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpq_base::TypeInterner;
use tpq_core::cim;
use tpq_data::{generate_document, Document, DocumentSpec};
use tpq_match::{answer_set, Matcher};
use tpq_pattern::parse_pattern;

fn docs() -> Vec<(usize, Document)> {
    [1_000usize, 10_000, 100_000]
        .into_iter()
        .map(|n| {
            (
                n,
                generate_document(&DocumentSpec {
                    nodes: n,
                    num_types: 6,
                    max_fanout: 5,
                    extra_type_prob: 0.05,
                    seed: 42,
                }),
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut tys = TypeInterner::new();
    for i in 0..6 {
        tys.intern(&format!("t{i}"));
    }
    let full = parse_pattern("t0*[//t1][//t1][//t2//t1][//t2//t1]//t3", &mut tys).unwrap();
    let minimal = cim(&full);
    assert!(minimal.size() < full.size());

    let mut group = c.benchmark_group("matching_scale");
    group.sample_size(10);
    for (n, doc) in docs() {
        group.bench_with_input(BenchmarkId::new("original", n), &n, |b, _| {
            b.iter(|| answer_set(&full, &doc))
        });
        group.bench_with_input(BenchmarkId::new("minimized", n), &n, |b, _| {
            b.iter(|| answer_set(&minimal, &doc))
        });
        // Index construction alone, for the record.
        group.bench_with_input(BenchmarkId::new("matcher_build", n), &n, |b, _| {
            b.iter(|| Matcher::new(&minimal, &doc).matches())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
