//! Ablations of the design choices DESIGN.md calls out:
//!
//! * images-pruning containment vs exponential backtracking;
//! * CIM's "never retest non-redundant leaves" enhancement;
//! * pattern matching cost before vs after minimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpq_base::TypeInterner;
use tpq_core::cim;
use tpq_match::answer_set;
use tpq_pattern::{EdgeKind, TreePattern};

fn chain(ty: tpq_base::TypeId, tail: Option<tpq_base::TypeId>, len: usize) -> TreePattern {
    let mut p = TreePattern::new(ty);
    let mut cur = p.root();
    for _ in 1..len {
        cur = p.add_child(cur, EdgeKind::Descendant, ty);
    }
    if let Some(t) = tail {
        p.add_child(cur, EdgeKind::Descendant, t);
    }
    p
}

fn bench_containment(c: &mut Criterion) {
    let mut tys = TypeInterner::new();
    let a = tys.intern("a");
    let t_c = tys.intern("c");
    let mut group = c.benchmark_group("ablate_containment");
    group.sample_size(10);
    for k in [5usize, 7, 9] {
        let from = chain(a, Some(t_c), k);
        let to = chain(a, None, 2 * k);
        group.bench_with_input(BenchmarkId::new("pruning", k), &k, |b, _| {
            b.iter(|| tpq_core::has_homomorphism(&from, &to))
        });
        group.bench_with_input(BenchmarkId::new("backtracking", k), &k, |b, _| {
            b.iter(|| tpq_core::has_homomorphism_naive(&from, &to))
        });
    }
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut tys = TypeInterner::new();
    let full =
        tpq_pattern::parse_pattern("Dept*[//Proj][//Proj][//Mgr//Proj][//Mgr//Proj]", &mut tys)
            .unwrap();
    let minimal = cim(&full);
    let dept = tys.lookup("Dept").unwrap();
    let mgr = tys.lookup("Mgr").unwrap();
    let proj = tys.lookup("Proj").unwrap();
    let mut doc = tpq_data::Document::new(dept);
    for _ in 0..40 {
        let m = doc.add_child(doc.root(), mgr);
        for _ in 0..4 {
            doc.add_child(m, proj);
        }
    }
    let mut group = c.benchmark_group("ablate_matching");
    group.sample_size(20);
    group.bench_function("original_pattern", |b| b.iter(|| answer_set(&full, &doc)));
    group.bench_function("minimized_pattern", |b| b.iter(|| answer_set(&minimal, &doc)));
    group.finish();
}

criterion_group!(benches, bench_containment, bench_matching);
criterion_main!(benches);
