//! Tree pattern query minimization — the core algorithms of
//! *Minimization of Tree Pattern Queries* (SIGMOD 2001).
//!
//! # Overview
//!
//! * [`contains()`](fn@contains) / [`equivalent()`](fn@equivalent) — containment and equivalence of tree
//!   patterns via containment mappings (Section 4);
//! * [`cim()`](fn@cim) — **C**onstraint-**I**ndependent **M**inimization: the unique
//!   minimal equivalent query in the absence of integrity constraints
//!   (Theorem 4.1), computed by maximal elimination orderings over the
//!   polynomial redundant-leaf test of Figure 3;
//! * [`contains_under()`](fn@contains_under) / [`equivalent_under()`](fn@equivalent_under) — containment and
//!   equivalence *under* a set of required-child / required-descendant /
//!   co-occurrence constraints (Section 5);
//! * [`acim()`](fn@acim) — **A**ugmented CIM: chase-style augmentation with temporary
//!   nodes, then CIM, then stripping; always yields the unique minimal
//!   equivalent query under the constraints (Theorem 5.1);
//! * [`cdm()`](fn@cdm) — **C**onstraint-**D**ependent **M**inimization: the fast
//!   local-pruning pass driven by information-content propagation
//!   (Figures 4 and 6); produces a locally minimal query (Theorem 5.2);
//! * [`minimize()`](fn@minimize) — the recommended pipeline, CDM as a pre-filter followed
//!   by ACIM (Theorem 5.3), with per-phase statistics.
//!
//! # Example
//!
//! ```
//! use tpq_base::TypeInterner;
//! use tpq_pattern::parse_pattern;
//! use tpq_constraints::parse_constraints;
//! use tpq_core::{cim, minimize};
//!
//! let mut tys = TypeInterner::new();
//! // Figure 2(h): OrgUnits containing a Dept with a Researcher managing a
//! // DBProject, and a Dept descendant containing a DBProject.
//! let q = parse_pattern(
//!     "OrgUnit*[/Dept/Researcher//DBProject]//Dept//DBProject",
//!     &mut tys,
//! ).unwrap();
//! let m = cim(&q);
//! assert_eq!(m.size(), 4); // Figure 2(i): the right branch folds away
//!
//! // Figure 2(b) + the IC Section ->> Paragraph gives Figure 2(e).
//! let q = parse_pattern(
//!     "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
//!     &mut tys,
//! ).unwrap();
//! let ics = parse_constraints("Section ->> Paragraph", &mut tys).unwrap();
//! let out = minimize(&q, &ics);
//! assert_eq!(out.pattern.size(), 3); // Figure 2(e): Articles/Article*//Section
//! ```

#![warn(missing_docs)]

pub mod acim;
pub mod batch;
pub mod cdm;
pub mod chase;
pub mod cim;
pub mod containment;
pub mod explain;
pub mod incremental;
pub mod info;
pub mod local;
pub mod mapping;
pub mod pipeline;
pub mod redundant;
pub mod session;
pub mod stats;

pub use acim::{acim, acim_closed, acim_closed_guarded, acim_with_stats};
pub use batch::{
    clear_engine_cache, clear_shared_caches, export_engines, seed_engine, shared_engine,
    BatchMinimizer, BatchOutcome, BatchStats, CachedOutcome, GuardedBatchOutcome,
};
pub use cdm::{cdm, cdm_closed, cdm_in_place, cdm_in_place_guarded, cdm_with_stats};
pub use chase::{augment, augment_guarded, chase};
pub use cim::{
    cim, cim_in_place, cim_in_place_guarded, cim_with_order, cim_with_stats, cim_with_stats_guarded,
};
pub use containment::{
    contains, contains_guarded, contains_under, contains_under_guarded, equivalent,
    equivalent_guarded, equivalent_under, equivalent_under_guarded,
};
pub use explain::{explain, explain_guarded, ChaseFact, Deletion, Explanation, Reason};
pub use incremental::{
    acim_incremental_closed, acim_incremental_closed_guarded, cim_incremental,
    cim_incremental_with_stats, CimEngine,
};
pub use local::locally_redundant_leaves;
pub use mapping::{has_homomorphism, has_homomorphism_guarded, has_homomorphism_naive};
pub use pipeline::{
    clear_closure_cache, export_closures, import_closure, minimize, minimize_with,
    minimize_with_guarded, MinimizeOutcome, Strategy,
};
pub use redundant::{redundant_leaf, redundant_leaf_guarded};
pub use session::{is_minimal, minimize_closed, minimize_closed_guarded, Minimizer};
pub use stats::MinimizeStats;
