//! A reusable minimization session.
//!
//! Query optimizers minimize many patterns against one schema. Closing
//! the constraint set is quadratic and needs doing once; [`Minimizer`]
//! owns the closed set (plus the chosen strategy) and exposes one-call
//! minimization, equivalence and minimality checks against it.
//!
//! ```
//! use tpq_base::TypeInterner;
//! use tpq_constraints::parse_constraints;
//! use tpq_core::session::Minimizer;
//! use tpq_pattern::parse_pattern;
//!
//! let mut tys = TypeInterner::new();
//! let ics = parse_constraints("Book -> Title", &mut tys).unwrap();
//! let mini = Minimizer::new(&ics);
//! let q = parse_pattern("Book*[/Title][/Author]", &mut tys).unwrap();
//! let m = mini.minimize(&q).pattern;
//! assert_eq!(m.size(), 2);
//! assert!(mini.equivalent(&q, &m));
//! assert!(mini.is_minimal(&m));
//! assert!(!mini.is_minimal(&q));
//! ```

use crate::cdm::cdm_in_place_guarded;
use crate::cim::cim_with_stats_guarded;
use crate::containment;
use crate::incremental::acim_incremental_closed_guarded;
use crate::pipeline::{MinimizeOutcome, Strategy};
use crate::stats::MinimizeStats;
use std::time::Instant;
use tpq_base::{BudgetResource, Error, Guard, Result};
use tpq_constraints::ConstraintSet;
use tpq_pattern::{isomorphic, TreePattern};

/// A minimization context holding a logically closed constraint set.
#[derive(Debug, Clone)]
pub struct Minimizer {
    closed: ConstraintSet,
    strategy: Strategy,
}

impl Minimizer {
    /// Build a session from a (not necessarily closed) constraint set,
    /// using the default strategy ([`Strategy::CdmThenAcim`]).
    pub fn new(ics: &ConstraintSet) -> Self {
        Minimizer { closed: ics.closure(), strategy: Strategy::default() }
    }

    /// Build with an explicit strategy.
    pub fn with_strategy(ics: &ConstraintSet, strategy: Strategy) -> Self {
        Minimizer { closed: ics.closure(), strategy }
    }

    /// Build from a constraint set that is **already closed** (e.g. one
    /// taken from another session or the pipeline's closure cache). The
    /// quadratic closure computation is skipped; passing a non-closed set
    /// silently under-minimizes, so only hand this sets produced by
    /// [`ConstraintSet::closure`].
    pub fn from_closed(closed: ConstraintSet, strategy: Strategy) -> Self {
        Minimizer { closed, strategy }
    }

    /// The closed constraint set this session minimizes under.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.closed
    }

    /// The strategy this session runs.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Minimize one query.
    pub fn minimize(&self, q: &TreePattern) -> MinimizeOutcome {
        minimize_closed(q, &self.closed, self.strategy)
    }

    /// Minimize one query under a [`Guard`] (deadline, step budget,
    /// cooperative cancellation). A tripped guard returns a
    /// [`Error::Budget`] error and leaves the input untouched.
    pub fn minimize_guarded(&self, q: &TreePattern, guard: &Guard) -> Result<MinimizeOutcome> {
        minimize_closed_guarded(q, &self.closed, self.strategy, guard)
    }

    /// `q1 ⊆ q2` under the session's constraints.
    pub fn contains(&self, q1: &TreePattern, q2: &TreePattern) -> bool {
        containment::contains_under(q1, q2, &self.closed)
    }

    /// `q1 ≡ q2` under the session's constraints.
    pub fn equivalent(&self, q1: &TreePattern, q2: &TreePattern) -> bool {
        containment::equivalent_under(q1, q2, &self.closed)
    }

    /// [`Minimizer::equivalent`] under a [`Guard`].
    pub fn equivalent_guarded(
        &self,
        q1: &TreePattern,
        q2: &TreePattern,
        guard: &Guard,
    ) -> Result<bool> {
        containment::equivalent_under_guarded(q1, q2, &self.closed, guard)
    }

    /// Is `q` already minimal under the session's constraints? (True iff
    /// minimization leaves it isomorphic — minimal queries are unique,
    /// Theorem 5.1.)
    pub fn is_minimal(&self, q: &TreePattern) -> bool {
        let m = self.minimize(q).pattern;
        m.size() == q.size() && isomorphic(&m, q)
    }
}

/// Minimize `q` under an **already closed** constraint set with the given
/// strategy. This is the shared core behind [`Minimizer::minimize`], the
/// one-shot [`crate::pipeline::minimize_with`] and the batch engine — the
/// closure is never recomputed here.
pub fn minimize_closed(
    q: &TreePattern,
    closed: &ConstraintSet,
    strategy: Strategy,
) -> MinimizeOutcome {
    minimize_closed_guarded(q, closed, strategy, &Guard::unlimited())
        .expect("unlimited guard cannot trip and no failpoint is armed")
}

/// [`minimize_closed`] under a [`Guard`]: the guard is threaded through
/// every strategy (redundancy tests, table builds, chase steps, CDM
/// sweeps). On a tripped guard the input is untouched — all strategies
/// work on internal clones — and the error reports which resource ran
/// out. Budget trips also bump the `guard.timeout` / `guard.budget` /
/// `guard.cancel` observability counters.
pub fn minimize_closed_guarded(
    q: &TreePattern,
    closed: &ConstraintSet,
    strategy: Strategy,
    guard: &Guard,
) -> Result<MinimizeOutcome> {
    let _span = tpq_obs::span!("minimize");
    let mut stats = MinimizeStats::default();
    let t0 = Instant::now();
    let mut run = || -> Result<TreePattern> {
        Ok(match strategy {
            Strategy::CimOnly => cim_with_stats_guarded(q, &mut stats, guard)?,
            Strategy::AcimOnly => acim_incremental_closed_guarded(q, closed, &mut stats, guard)?,
            Strategy::CdmOnly => {
                let mut work = q.clone();
                cdm_in_place_guarded(&mut work, closed, &mut stats, guard)?;
                work.compact().0
            }
            Strategy::CdmThenAcim => {
                let mut work = q.clone();
                cdm_in_place_guarded(&mut work, closed, &mut stats, guard)?;
                let (prefiltered, _) = work.compact();
                acim_incremental_closed_guarded(&prefiltered, closed, &mut stats, guard)?
            }
        })
    };
    let pattern = run().inspect_err(note_budget_trip)?;
    stats.total_time = t0.elapsed();
    Ok(MinimizeOutcome { pattern, stats })
}

/// Record a budget trip on the observability counters (the base crate
/// cannot depend on `tpq-obs`, so the counters are bumped where the
/// errors surface).
pub(crate) fn note_budget_trip(e: &Error) {
    if let Error::Budget { resource, .. } = e {
        let name = match resource {
            BudgetResource::Deadline => "guard.timeout",
            BudgetResource::Steps => "guard.budget",
            BudgetResource::Cancelled => "guard.cancel",
        };
        tpq_obs::incr(name, 1);
    }
}

/// Is `q` minimal in the absence of constraints? (Theorem 4.1.)
pub fn is_minimal(q: &TreePattern) -> bool {
    let m = crate::cim::cim(q);
    m.size() == q.size() && isomorphic(&m, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::TypeInterner;
    use tpq_constraints::parse_constraints;
    use tpq_pattern::parse_pattern;

    fn setup() -> (Minimizer, TypeInterner) {
        let mut tys = TypeInterner::new();
        let ics = parse_constraints("Article -> Title\nSection ->> Paragraph", &mut tys).unwrap();
        (Minimizer::new(&ics), tys)
    }

    #[test]
    fn reusable_across_queries() {
        let (mini, mut tys) = setup();
        let cases = [
            ("Articles/Article*[/Title]//Section//Paragraph", 3),
            ("Article*[/Title]", 1),
            ("Article*//Section", 2),
            ("Section*//Paragraph", 1),
        ];
        for (src, want) in cases {
            let q = parse_pattern(src, &mut tys).unwrap();
            let m = mini.minimize(&q).pattern;
            assert_eq!(m.size(), want, "{src}");
            assert!(mini.equivalent(&q, &m), "{src}");
        }
    }

    #[test]
    fn minimality_checks() {
        let (mini, mut tys) = setup();
        let minimal = parse_pattern("Article*//Section", &mut tys).unwrap();
        let redundant = parse_pattern("Article*[/Title]//Section", &mut tys).unwrap();
        assert!(mini.is_minimal(&minimal));
        assert!(!mini.is_minimal(&redundant));
        // Constraint-free minimality.
        let q = parse_pattern("a*[//b]//b//c", &mut tys).unwrap();
        assert!(!is_minimal(&q));
        assert!(is_minimal(&crate::cim::cim(&q)));
    }

    #[test]
    fn strategies_share_the_session() {
        let mut tys = TypeInterner::new();
        let ics = parse_constraints("a -> b", &mut tys).unwrap();
        let q = parse_pattern("a*[/b][/c]", &mut tys).unwrap();
        for strategy in
            [Strategy::CimOnly, Strategy::AcimOnly, Strategy::CdmOnly, Strategy::CdmThenAcim]
        {
            let mini = Minimizer::with_strategy(&ics, strategy);
            let m = mini.minimize(&q).pattern;
            match strategy {
                Strategy::CimOnly => assert_eq!(m.size(), 3, "CIM ignores ICs"),
                _ => assert_eq!(m.size(), 2),
            }
        }
    }

    #[test]
    fn session_constraints_are_closed() {
        let mut tys = TypeInterner::new();
        let ics = parse_constraints("a -> b\nb -> c", &mut tys).unwrap();
        let mini = Minimizer::new(&ics);
        let (a, c) = (tys.lookup("a").unwrap(), tys.lookup("c").unwrap());
        assert!(mini.constraints().has_required_descendant(a, c));
    }
}
