//! Explain traces: *why* each node of a minimized query was deleted.
//!
//! [`explain`] runs one minimization with the observability event layer
//! forced on and a fresh trace id scoped to the run, then folds the
//! drained [`tpq_obs::Event`] stream into one [`Deletion`] record per
//! removed node:
//!
//! * a CDM removal cites the Figure 6 rule and the constraint-closure
//!   fact that fired (`cdm.prune` events);
//! * a CIM/ACIM removal cites the node the deleted leaf maps onto under
//!   a witnessing endomorphism (`cim.prune` events). When the witness is
//!   a temporary node added by augmentation, the `chase.apply` event that
//!   created it is resolved so the explanation names the IC instead of an
//!   internal node id (ACIM's Theorem 5.1 mechanism made visible).
//!
//! All node ids in an [`Explanation`] refer to the **input** pattern's
//! arena: the strategies are driven without intermediate compaction, so
//! a `Deletion::node` can be looked up directly in the caller's pattern.
//! (Temporary augmentation nodes get ids past `input.arena_len()`; they
//! never appear as deletions, only — resolved — as witnesses.)
//!
//! Concurrency: the event ring is process-global, so explains serialize
//! on an internal lock and filter the drained batch by their own trace
//! id. Running an explain turns the observability layer on for the rest
//! of the process (it is never turned back off — concurrent users may
//! rely on it).

use crate::cdm::cdm_in_place_guarded;
use crate::cim::cim_in_place_guarded;
use crate::incremental::CimEngine;
use crate::pipeline::Strategy;
use crate::stats::MinimizeStats;
use std::sync::Mutex;
use std::time::Instant;
use tpq_base::{Guard, Result, TypeId};
use tpq_constraints::ConstraintSet;
use tpq_pattern::{NodeId, TreePattern};

/// One applied constraint-closure fact, as recorded by the chase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaseFact {
    /// Node of the input pattern the fact was applied at.
    pub at: NodeId,
    /// Left-hand type of the constraint.
    pub lhs: TypeId,
    /// Constraint operator: `->`, `->>` or `~`.
    pub op: &'static str,
    /// Right-hand type of the constraint.
    pub rhs: TypeId,
}

/// The justification for one deleted node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reason {
    /// Deleted by a CDM information-content rule (Figure 6).
    Cdm {
        /// Figure 6 rule number (1–4).
        rule: u8,
        /// Parent node the rule fired at.
        at: NodeId,
        /// The constraint-closure fact that made the node redundant.
        fact: ChaseFact,
        /// Rule 3/4 co-occurrence witness type (the sibling/descendant
        /// type whose presence discharges the deleted node).
        witness_ty: Option<TypeId>,
    },
    /// Deleted by CIM/ACIM: the leaf maps onto `witness` under an
    /// endomorphism fixing everything else.
    Cim {
        /// The node the deleted leaf maps onto (input-arena id; for an
        /// IC-implied witness this is the temporary node's id).
        witness: NodeId,
        /// Primary type of the witness node.
        witness_ty: TypeId,
        /// When the witness was a temporary node added by augmentation,
        /// the chase fact that created it (ACIM's mechanism).
        via: Option<ChaseFact>,
    },
}

/// One deleted node with its justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deletion {
    /// The deleted node's id in the **input** pattern's arena.
    pub node: NodeId,
    /// The deleted node's primary type.
    pub ty: TypeId,
    /// Why the deletion was sound.
    pub reason: Reason,
}

/// The result of an explained minimization run.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The minimized (compacted) query — identical to what
    /// [`crate::minimize_with`] returns for the same inputs.
    pub minimized: TreePattern,
    /// Per-phase measurements of the run.
    pub stats: MinimizeStats,
    /// The trace id the run executed under (render with
    /// [`tpq_obs::trace_hex`]).
    pub trace: u64,
    /// One record per deleted node, in removal order.
    pub deletions: Vec<Deletion>,
    /// The raw event stream of the run (decision events and span-close
    /// events), in emission order.
    pub events: Vec<tpq_obs::Event>,
}

/// Minimize `q` under `ics` (closed internally) and explain every
/// deletion. See the module docs for semantics and concurrency notes.
pub fn explain(q: &TreePattern, ics: &ConstraintSet, strategy: Strategy) -> Explanation {
    explain_guarded(q, ics, strategy, &Guard::unlimited())
        .expect("unlimited guard cannot trip and no failpoint is armed")
}

/// [`explain`] under a [`Guard`]. A tripped guard returns [`Err`] with
/// the input untouched (the run works on an internal clone).
pub fn explain_guarded(
    q: &TreePattern,
    ics: &ConstraintSet,
    strategy: Strategy,
    guard: &Guard,
) -> Result<Explanation> {
    // The event ring is process-global: serialize explains so two runs
    // never interleave their decision events.
    static EXPLAIN_LOCK: Mutex<()> = Mutex::new(());
    let _serial = EXPLAIN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    tpq_obs::set_enabled(true);
    let closed = ics.closure();
    let trace = tpq_obs::fresh_trace_id();
    let mut stats = MinimizeStats::default();
    let t0 = Instant::now();
    let run = {
        let _scope = tpq_obs::trace_scope(trace);
        run_uncompacted(q, &closed, strategy, &mut stats, guard)
    };
    let events: Vec<tpq_obs::Event> =
        tpq_obs::drain_events().into_iter().filter(|e| e.trace == trace).collect();
    let minimized = run.inspect_err(crate::session::note_budget_trip)?;
    stats.total_time = t0.elapsed();
    let deletions = fold_deletions(q, &events);
    Ok(Explanation { minimized, stats, trace, deletions, events })
}

/// Run `strategy` on a clone of `q` **without intermediate compaction**,
/// so every node id the decision events carry stays valid in the input
/// arena. Compacts only once, at the very end.
fn run_uncompacted(
    q: &TreePattern,
    closed: &ConstraintSet,
    strategy: Strategy,
    stats: &mut MinimizeStats,
    guard: &Guard,
) -> Result<TreePattern> {
    let _span = tpq_obs::span!("minimize");
    let mut work = q.clone();
    match strategy {
        Strategy::CimOnly => {
            cim_in_place_guarded(&mut work, stats, guard)?;
        }
        Strategy::CdmOnly => {
            cdm_in_place_guarded(&mut work, closed, stats, guard)?;
        }
        Strategy::AcimOnly | Strategy::CdmThenAcim => {
            if strategy == Strategy::CdmThenAcim {
                cdm_in_place_guarded(&mut work, closed, stats, guard)?;
            }
            let allowed = crate::chase::present_types(&work);
            crate::chase::augment_guarded(&mut work, closed, &allowed, stats, guard)?;
            let mut engine = CimEngine::new_guarded(work, stats, guard)?;
            engine.run_guarded(stats, guard)?;
            work = engine.into_pattern();
            work.strip_temporaries();
        }
    }
    Ok(work.compact().0)
}

/// Fold the filtered event stream into per-node deletion records.
fn fold_deletions(input: &TreePattern, events: &[tpq_obs::Event]) -> Vec<Deletion> {
    // Temp node id -> the chase fact that created it.
    let chase_facts: Vec<(NodeId, ChaseFact)> = events
        .iter()
        .filter(|e| e.name == "chase.apply")
        .filter_map(|e| {
            let temp = NodeId(e.u64_field("temp")? as u32);
            Some((
                temp,
                ChaseFact {
                    at: NodeId(e.u64_field("node")? as u32),
                    lhs: TypeId(e.u64_field("lhs")? as u32),
                    op: e.str_field("op")?,
                    rhs: TypeId(e.u64_field("rhs")? as u32),
                },
            ))
        })
        .collect();
    let fact_for = |id: NodeId| chase_facts.iter().find(|(t, _)| *t == id).map(|(_, f)| f.clone());
    let original = |id: NodeId| id.index() < input.arena_len();
    let mut out = Vec::new();
    for e in events {
        match e.name {
            "cdm.prune" => {
                let (Some(node), Some(at), Some(rule), Some(lhs), Some(op), Some(rhs)) = (
                    e.u64_field("node"),
                    e.u64_field("at"),
                    e.u64_field("rule"),
                    e.u64_field("lhs"),
                    e.str_field("op"),
                    e.u64_field("rhs"),
                ) else {
                    continue;
                };
                let node = NodeId(node as u32);
                if !original(node) {
                    continue;
                }
                out.push(Deletion {
                    node,
                    ty: input.node(node).primary,
                    reason: Reason::Cdm {
                        rule: rule as u8,
                        at: NodeId(at as u32),
                        fact: ChaseFact {
                            at: NodeId(at as u32),
                            lhs: TypeId(lhs as u32),
                            op,
                            rhs: TypeId(rhs as u32),
                        },
                        witness_ty: e.u64_field("witness_ty").map(|w| TypeId(w as u32)),
                    },
                });
            }
            "cim.prune" => {
                let (Some(node), Some(witness)) = (e.u64_field("node"), e.u64_field("witness"))
                else {
                    continue;
                };
                let node = NodeId(node as u32);
                if !original(node) {
                    continue;
                }
                let witness = NodeId(witness as u32);
                let via = fact_for(witness);
                let witness_ty = match &via {
                    Some(fact) => fact.rhs,
                    None if original(witness) => input.node(witness).primary,
                    // A temp whose creation event was overwritten in the
                    // ring: fall back to the deleted node's own type (a
                    // witness always carries it).
                    None => input.node(node).primary,
                };
                out.push(Deletion {
                    node,
                    ty: input.node(node).primary,
                    reason: Reason::Cim { witness, witness_ty, via },
                });
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::TypeInterner;
    use tpq_constraints::parse_constraints;
    use tpq_pattern::{isomorphic, parse_pattern};

    fn setup(q: &str, ics: &str) -> (TreePattern, ConstraintSet, TypeInterner) {
        let mut tys = TypeInterner::new();
        let pat = parse_pattern(q, &mut tys).unwrap();
        let set = parse_constraints(ics, &mut tys).unwrap();
        (pat, set, tys)
    }

    #[test]
    fn explains_match_the_plain_pipeline_result() {
        let (q, ics, _) = setup(
            "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
            "Section ->> Paragraph",
        );
        for strategy in
            [Strategy::CimOnly, Strategy::AcimOnly, Strategy::CdmOnly, Strategy::CdmThenAcim]
        {
            let ex = explain(&q, &ics, strategy);
            let plain = crate::pipeline::minimize_with(&q, &ics, strategy);
            assert!(
                isomorphic(&ex.minimized, &plain.pattern),
                "{strategy:?}: explain and minimize disagree"
            );
        }
    }

    #[test]
    fn every_deleted_node_gets_a_justification() {
        // Figure 2 ACIM example: 5 nodes in, 3 out — two deletions.
        let (q, ics, _) = setup(
            "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
            "Section ->> Paragraph",
        );
        let ex = explain(&q, &ics, Strategy::CdmThenAcim);
        assert_eq!(ex.minimized.size(), 3);
        assert_eq!(ex.deletions.len(), q.size() - ex.minimized.size());
        for d in &ex.deletions {
            assert!(d.node.index() < q.arena_len(), "deletions cite input-arena ids");
            match &d.reason {
                Reason::Cdm { rule, .. } => assert!((1..=4).contains(rule)),
                Reason::Cim { witness_ty, .. } => {
                    // A witness must be able to stand in for the deleted
                    // node, so it carries the same primary type here.
                    assert_eq!(*witness_ty, d.ty);
                }
            }
        }
    }

    #[test]
    fn acim_witness_resolves_to_the_creating_chase_fact() {
        // The shallow Paragraph folds onto the IC-implied temp under
        // Section (ACIM's mechanism); the explanation must cite the IC.
        let (q, ics, tys) = setup(
            "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
            "Section ->> Paragraph",
        );
        let ex = explain(&q, &ics, Strategy::AcimOnly);
        let section = tys.lookup("Section").unwrap();
        let paragraph = tys.lookup("Paragraph").unwrap();
        let via_ic = ex.deletions.iter().any(|d| {
            matches!(
                &d.reason,
                Reason::Cim { via: Some(fact), .. }
                    if fact.lhs == section && fact.op == "->>" && fact.rhs == paragraph
            )
        });
        assert!(via_ic, "no deletion cites the Section ->> Paragraph chase fact: {ex:#?}");
    }

    #[test]
    fn cdm_deletion_cites_the_figure_6_rule() {
        let (q, ics, tys) = setup("Section*//Paragraph", "Section ->> Paragraph");
        let ex = explain(&q, &ics, Strategy::CdmOnly);
        assert_eq!(ex.minimized.size(), 1);
        assert_eq!(ex.deletions.len(), 1);
        let d = &ex.deletions[0];
        assert_eq!(d.ty, tys.lookup("Paragraph").unwrap());
        match &d.reason {
            Reason::Cdm { rule, fact, .. } => {
                assert_eq!(*rule, 2);
                assert_eq!(fact.op, "->>");
                assert_eq!(fact.lhs, tys.lookup("Section").unwrap());
                assert_eq!(fact.rhs, tys.lookup("Paragraph").unwrap());
            }
            other => panic!("expected a CDM reason, got {other:?}"),
        }
    }

    #[test]
    fn constraint_free_explain_uses_plain_witnesses() {
        let (q, ics, _) = setup("Dept*[//DBProject]//Manager//DBProject", "");
        let ex = explain(&q, &ics, Strategy::CimOnly);
        assert_eq!(ex.minimized.size(), 3);
        assert_eq!(ex.deletions.len(), 1);
        match &ex.deletions[0].reason {
            Reason::Cim { via, witness, .. } => {
                assert!(via.is_none(), "no ICs, so no chase facts");
                assert!(witness.index() < q.arena_len());
            }
            other => panic!("expected a CIM reason, got {other:?}"),
        }
    }

    #[test]
    fn events_are_scoped_to_the_run_trace() {
        let (q, ics, _) = setup("a*[/b][/b]", "");
        let ex = explain(&q, &ics, Strategy::CimOnly);
        assert!(ex.trace != 0);
        assert!(!ex.events.is_empty());
        assert!(ex.events.iter().all(|e| e.trace == ex.trace));
    }
}
