//! Chase and augmentation (Section 5.1–5.2).
//!
//! The classical chase adds IC-implied structure to a query. A blind chase
//! can blow the query up arbitrarily (Section 5.1), so ACIM uses the
//! restricted **augmentation**: work with a *logically closed* constraint
//! set, apply ICs only to nodes that existed before the chase, only for
//! target types that occur in the original query, and mark everything
//! added as *temporary* so it is never tested for redundancy and is
//! stripped at the end.

use crate::stats::MinimizeStats;
use tpq_base::{failpoint, FxHashSet, Guard, Result, TypeId};
use tpq_constraints::ConstraintSet;
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// One round of the unrestricted chase of Section 5.1, applied to the
/// current nodes of `q` (added nodes are plain, *not* temporary). Exposed
/// for illustration and for tests that reproduce the Section 5.1
/// counter-example; ACIM uses [`augment`] instead.
pub fn chase(q: &TreePattern, ics: &ConstraintSet) -> TreePattern {
    let mut out = q.clone();
    let nodes: Vec<NodeId> = out.alive_ids().collect();
    for v in nodes {
        let types: Vec<TypeId> = out.node(v).types.iter().collect();
        for t in types {
            for &u in ics.cooccurrences_of(t) {
                out.node_mut(v).types.insert(u);
            }
            for &u in ics.required_children_of(t) {
                out.add_child(v, EdgeKind::Child, u);
            }
            for &u in ics.required_descendants_of(t) {
                out.add_child(v, EdgeKind::Descendant, u);
            }
        }
    }
    out
}

/// Augment `q` in place with respect to the **closed** constraint set
/// `closed` (Section 5.2). Returns the number of temporary nodes added.
///
/// * Co-occurrence constraints merge extra types into original nodes.
/// * `t1 -> t2` / `t1 ->> t2` add a temporary c-/d-child of type `t2`
///   under each original node carrying `t1` — but only when `t2` is in
///   `allowed_rhs` (for ACIM: the types present in the original query;
///   "if there is no node of type t2 in the original query, then we do not
///   apply this IC").
/// * When both `t1 -> t2` and `t1 ->> t2` apply, only the (stronger)
///   c-child is added: a d-edge query node can map onto a c-child, so the
///   d-child temp would be dead weight.
/// * ICs are never applied *structurally* to nodes added by the
///   augmentation itself — temps stay childless. Their *type sets*,
///   however, are the co-occurrence closure of their type: a temp stands
///   for an IC-guaranteed data node, and every data node of type `t2`
///   carries `t2`'s co-occurrence types on a Σ-satisfying database.
///   Without this, an original node that gained a co-occurrence type
///   could never map onto an equally-typed temp.
pub fn augment(
    q: &mut TreePattern,
    closed: &ConstraintSet,
    allowed_rhs: &FxHashSet<TypeId>,
    stats: &mut MinimizeStats,
) -> usize {
    augment_guarded(q, closed, allowed_rhs, stats, &Guard::unlimited())
        .expect("unlimited guard cannot trip and no failpoint is armed")
}

/// [`augment`] under a [`Guard`]: spends one step per (node, type) pair
/// chased and passes the `chase.step` failpoint on each. A tripped guard
/// (or injected fault) aborts mid-augmentation with [`Err`], leaving `q`
/// partially augmented but structurally valid — every temp added is
/// IC-implied, so the partial pattern is still equivalent to the input
/// under the constraints. Callers wanting all-or-nothing semantics work
/// on a clone (as [`acim_incremental_closed_guarded`] and
/// [`crate::acim::acim_closed_guarded`] do).
///
/// [`acim_incremental_closed_guarded`]: crate::incremental::acim_incremental_closed_guarded
pub fn augment_guarded(
    q: &mut TreePattern,
    closed: &ConstraintSet,
    allowed_rhs: &FxHashSet<TypeId>,
    stats: &mut MinimizeStats,
    guard: &Guard,
) -> Result<usize> {
    let _span = tpq_obs::span!("acim.augment");
    let obs_on = tpq_obs::enabled();
    use tpq_obs::FieldValue::{Str, U64};
    let originals: Vec<NodeId> = q.alive_ids().filter(|&v| !q.node(v).temporary).collect();
    // Phase 1: co-occurrence types. One pass suffices on a closed set.
    for &v in &originals {
        let types: Vec<TypeId> = q.node(v).types.iter().collect();
        for t in types {
            failpoint::hit("chase.step")?;
            guard.spend(1)?;
            for &u in closed.cooccurrences_of(t) {
                if q.node_mut(v).types.insert(u) {
                    stats.augment_types_added += 1;
                    if obs_on {
                        tpq_obs::event(
                            "chase.apply",
                            &[
                                ("node", U64(v.0 as u64)),
                                ("lhs", U64(t.0 as u64)),
                                ("op", Str("~")),
                                ("rhs", U64(u.0 as u64)),
                            ],
                        );
                    }
                }
            }
        }
    }
    // Phase 2: temporary children.
    let mut added = 0usize;
    for &v in &originals {
        guard.check()?;
        let types: Vec<TypeId> = q.node(v).types.iter().collect();
        let mut have: FxHashSet<(EdgeKind, TypeId)> = q
            .node(v)
            .children
            .iter()
            .filter(|&&c| q.is_alive(c) && q.node(c).temporary)
            .map(|&c| (q.node(c).edge, q.node(c).primary))
            .collect();
        for &t in &types {
            failpoint::hit("chase.step")?;
            guard.spend(1)?;
            for &u in closed.required_children_of(t) {
                if allowed_rhs.contains(&u) && have.insert((EdgeKind::Child, u)) {
                    let temp = q.add_temp_child(v, EdgeKind::Child, u);
                    expand_temp_types(q, temp, closed);
                    added += 1;
                    if obs_on {
                        tpq_obs::event(
                            "chase.apply",
                            &[
                                ("node", U64(v.0 as u64)),
                                ("lhs", U64(t.0 as u64)),
                                ("op", Str("->")),
                                ("rhs", U64(u.0 as u64)),
                                ("temp", U64(temp.0 as u64)),
                            ],
                        );
                    }
                }
            }
        }
        for &t in &types {
            failpoint::hit("chase.step")?;
            guard.spend(1)?;
            for &u in closed.required_descendants_of(t) {
                if allowed_rhs.contains(&u)
                    && !have.contains(&(EdgeKind::Child, u))
                    && have.insert((EdgeKind::Descendant, u))
                {
                    let temp = q.add_temp_child(v, EdgeKind::Descendant, u);
                    expand_temp_types(q, temp, closed);
                    added += 1;
                    if obs_on {
                        tpq_obs::event(
                            "chase.apply",
                            &[
                                ("node", U64(v.0 as u64)),
                                ("lhs", U64(t.0 as u64)),
                                ("op", Str("->>")),
                                ("rhs", U64(u.0 as u64)),
                                ("temp", U64(temp.0 as u64)),
                            ],
                        );
                    }
                }
            }
        }
    }
    stats.augment_nodes_added += added;
    tpq_obs::incr("augment_nodes_added", added as u64);
    Ok(added)
}

/// Give a freshly added temp the co-occurrence closure of its type (one
/// pass suffices on a closed set).
fn expand_temp_types(q: &mut TreePattern, temp: NodeId, closed: &ConstraintSet) {
    let t = q.node(temp).primary;
    for &u in closed.cooccurrences_of(t) {
        q.node_mut(temp).types.insert(u);
    }
}

/// The set of types present in `q` (over full type sets of alive,
/// non-temporary nodes) — the `allowed_rhs` ACIM passes to [`augment`].
pub fn present_types(q: &TreePattern) -> FxHashSet<TypeId> {
    let mut s = FxHashSet::default();
    for v in q.alive_ids() {
        if !q.node(v).temporary {
            for t in q.node(v).types.iter() {
                s.insert(t);
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::TypeInterner;
    use tpq_constraints::parse_constraints;
    use tpq_pattern::parse_pattern;

    #[test]
    fn augment_adds_temp_children_for_present_types_only() {
        let mut tys = TypeInterner::new();
        let mut q = parse_pattern("Book*[/Title][/Author]", &mut tys).unwrap();
        let ics =
            parse_constraints("Book -> Title\nBook -> Publisher\nAuthor ->> LastName", &mut tys)
                .unwrap()
                .closure();
        let allowed = present_types(&q);
        let mut stats = MinimizeStats::default();
        let added = augment(&mut q, &ics, &allowed, &mut stats);
        // Only Book -> Title fires: Publisher and LastName are not in the
        // query.
        assert_eq!(added, 1);
        let temp = q.alive_ids().find(|&v| q.node(v).temporary).expect("one temp node");
        assert_eq!(tys.name(q.node(temp).primary), "Title");
        assert_eq!(q.node(temp).edge, EdgeKind::Child);
        assert_eq!(q.node(temp).parent, Some(q.root()));
        q.validate().unwrap();
    }

    #[test]
    fn augment_prefers_c_child_over_d_child() {
        let mut tys = TypeInterner::new();
        let mut q = parse_pattern("a*//b", &mut tys).unwrap();
        // Closure of a -> b contains both a -> b and a ->> b.
        let ics = parse_constraints("a -> b", &mut tys).unwrap().closure();
        let allowed = present_types(&q);
        let mut stats = MinimizeStats::default();
        let added = augment(&mut q, &ics, &allowed, &mut stats);
        assert_eq!(added, 1, "only the c-child temp, not a second d-child");
        let temp = q.alive_ids().find(|&v| q.node(v).temporary).unwrap();
        assert_eq!(q.node(temp).edge, EdgeKind::Child);
    }

    #[test]
    fn augment_merges_cooccurrence_types() {
        let mut tys = TypeInterner::new();
        let mut q = parse_pattern("Org*/PermEmp", &mut tys).unwrap();
        let ics = parse_constraints("PermEmp ~ Employee", &mut tys).unwrap().closure();
        let allowed = present_types(&q);
        let mut stats = MinimizeStats::default();
        augment(&mut q, &ics, &allowed, &mut stats);
        let perm = q.node(q.root()).children[0];
        let emp = tys.lookup("Employee").unwrap();
        assert!(q.node(perm).types.contains(emp));
        assert_eq!(stats.augment_types_added, 1);
    }

    #[test]
    fn augment_never_applies_ics_to_temps() {
        let mut tys = TypeInterner::new();
        let mut q = parse_pattern("a*[/b]", &mut tys).unwrap();
        let ics = parse_constraints("a -> b\nb -> a", &mut tys).unwrap().closure();
        let allowed = present_types(&q);
        let mut stats = MinimizeStats::default();
        augment(&mut q, &ics, &allowed, &mut stats);
        // Original a gets temp b (child) and temp a (descendant, from the
        // cyclic closure a ->> a); original b symmetrically. The temps
        // themselves must NOT get children of their own.
        for v in q.alive_ids() {
            if q.node(v).temporary {
                assert!(q.node(v).is_leaf(), "temps stay leaves");
            }
        }
        assert_eq!(stats.augment_nodes_added, 4);
    }

    #[test]
    fn augment_is_idempotent() {
        let mut tys = TypeInterner::new();
        let mut q = parse_pattern("a*[/b]", &mut tys).unwrap();
        let ics = parse_constraints("a -> b", &mut tys).unwrap().closure();
        let allowed = present_types(&q);
        let mut stats = MinimizeStats::default();
        let first = augment(&mut q, &ics, &allowed, &mut stats);
        let second = augment(&mut q, &ics, &allowed, &mut stats);
        assert_eq!(first, 1);
        assert_eq!(second, 0, "existing temp children deduplicate");
    }

    #[test]
    fn unrestricted_chase_applies_everything_once() {
        let mut tys = TypeInterner::new();
        let q = parse_pattern("Book*", &mut tys).unwrap();
        let ics = parse_constraints("Book -> Title\nBook ->> LastName", &mut tys).unwrap();
        let chased = chase(&q, &ics);
        assert_eq!(chased.size(), 3);
        // Chase-added nodes are not temporary.
        assert!(chased.alive_ids().all(|v| !chased.node(v).temporary));
    }

    #[test]
    fn present_types_includes_cooccurrence_added_types() {
        let mut tys = TypeInterner::new();
        let mut q = parse_pattern("a*", &mut tys).unwrap();
        let extra = tys.intern("x");
        let root = q.root();
        q.node_mut(root).types.insert(extra);
        let p = present_types(&q);
        assert!(p.contains(&extra));
        assert_eq!(p.len(), 2);
    }
}
