//! Information content for CDM (Section 5.4–5.5).
//!
//! Each node of the query is labelled with an *information content*: its
//! own type argument (`t` when the node is an unconstrained leaf, `~t`
//! when it has descendants) plus *structural obligations* describing what
//! the query forces to exist below it:
//!
//! * `a t` — obligated to be an ancestor of an unconstrained node of type
//!   `t` with nothing between: a direct d-child leaf;
//! * `a~ t` — same obligation but the node is constrained or deeper;
//! * `p t` / `p~ t` — the parent (c-child) analogues.
//!
//! Contents are propagated bottom-up by the rules of Figure 4: a child's
//! own type argument becomes `a t` / `p t` (or the `~` variants) at its
//! parent depending on the edge, and every obligation a child carries
//! becomes `a~ t` at the parent (rows 2, 3, 5, 6 — once there is
//! intervening structure, the obligation is "constrained").
//!
//! Plain obligations (`a t`, `p t`) remember the leaf that generated them
//! ([`Obligation::source`]): those are exactly the candidates the
//! minimization rules of Figure 6 may delete.

use tpq_base::TypeId;
use tpq_pattern::condition::Condition;
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// Whether an obligation demands ancestry (`a`, from a d-edge) or
/// parenthood (`p`, from a c-edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObligationKind {
    /// `a t` / `a~ t`.
    Ancestor,
    /// `p t` / `p~ t`.
    Parent,
}

/// One structural obligation in a node's information content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// Ancestor-of or parent-of.
    pub kind: ObligationKind,
    /// `true` for the `~` variants (`a~ t`, `p~ t`).
    pub constrained: bool,
    /// The obligated type.
    pub ty: TypeId,
    /// The direct leaf child that generated a *plain* obligation
    /// (`a t` / `p t`); `None` for constrained obligations.
    pub source: Option<NodeId>,
    /// Value-based conditions of the obligated node (Section 7): a target
    /// with conditions is only removable when a witness entails them, and
    /// IC-based rules require it to be condition-free.
    pub conditions: Vec<Condition>,
}

/// The full information content at one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfoContent {
    /// The node's own type argument.
    pub self_type: TypeId,
    /// `true` for `~t` (the node has children), `false` for plain `t`.
    pub self_constrained: bool,
    /// Structural obligations, in child order (may contain several plain
    /// obligations of the same type from distinct leaves).
    pub obligations: Vec<Obligation>,
}

impl InfoContent {
    /// Information content of a leaf: just its unconstrained type.
    pub fn leaf(ty: TypeId) -> Self {
        InfoContent { self_type: ty, self_constrained: false, obligations: Vec::new() }
    }

    /// Merge the propagated contribution of child `c` (whose own content is
    /// `child_info`, reached over `edge`) into `self` — the rules of
    /// Figure 4.
    pub fn absorb_child(&mut self, q: &TreePattern, c: NodeId, child_info: &InfoContent) {
        let edge = q.node(c).edge;
        self.self_constrained = true;
        // The child's own type argument (rows 1 and 4).
        let kind = match edge {
            EdgeKind::Descendant => ObligationKind::Ancestor,
            EdgeKind::Child => ObligationKind::Parent,
        };
        self.obligations.push(Obligation {
            kind,
            constrained: child_info.self_constrained,
            ty: child_info.self_type,
            source: if child_info.self_constrained { None } else { Some(c) },
            conditions: q.node(c).conditions.clone(),
        });
        // The child's obligations (rows 2, 3, 5, 6): all become `a~ t`.
        for o in &child_info.obligations {
            let propagated = Obligation {
                kind: ObligationKind::Ancestor,
                constrained: true,
                ty: o.ty,
                source: None,
                conditions: o.conditions.clone(),
            };
            // Constrained obligations carry no source, so duplicates are
            // pure noise — dedup them.
            if !self.obligations.contains(&propagated) {
                self.obligations.push(propagated);
            }
        }
    }
}

/// Compute the information content of every alive node of `q` (bottom-up,
/// no minimization). Indexed by arena position; dead slots hold `None`.
///
/// This is the pure propagation of Example 5.1, exposed for inspection and
/// testing; [`crate::cdm()`](fn@crate::cdm) interleaves the same propagation with the
/// minimization rules.
pub fn propagate(q: &TreePattern) -> Vec<Option<InfoContent>> {
    let mut out: Vec<Option<InfoContent>> = vec![None; q.arena_len()];
    for v in q.post_order() {
        let mut info = InfoContent::leaf(q.node(v).primary);
        let children: Vec<NodeId> =
            q.node(v).children.iter().copied().filter(|&c| q.is_alive(c)).collect();
        for c in children {
            let child_info = out[c.index()].take().expect("post-order: child processed");
            info.absorb_child(q, c, &child_info);
            out[c.index()] = Some(child_info);
        }
        out[v.index()] = Some(info);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::TypeInterner;
    use tpq_pattern::parse_pattern;

    fn ob(kind: ObligationKind, constrained: bool, ty: TypeId) -> (ObligationKind, bool, TypeId) {
        (kind, constrained, ty)
    }

    fn shape(o: &Obligation) -> (ObligationKind, bool, TypeId) {
        (o.kind, o.constrained, o.ty)
    }

    #[test]
    fn example_5_1_left_branch() {
        // The paper's Example 5.1 left branch: t2 //... t2 is d-child of t1;
        // t5 is d-child of t2; t4 is c-child of t5. Figure 5 step 1:
        //   t4 leaf:      t4
        //   t5 (c-parent): ~t5, p t4
        //   t2 (d-parent): ~t2, a~ t5, a~ t4
        let mut tys = TypeInterner::new();
        let q = parse_pattern("t1*//t2//t5/t4", &mut tys).unwrap();
        let infos = propagate(&q);
        let t = |n: &str| tys.lookup(n).unwrap();
        let find = |name: &str| q.alive_ids().find(|&v| q.node(v).primary == t(name)).unwrap();
        let i4 = infos[find("t4").index()].as_ref().unwrap();
        assert_eq!(i4.self_type, t("t4"));
        assert!(!i4.self_constrained);
        assert!(i4.obligations.is_empty());

        let i5 = infos[find("t5").index()].as_ref().unwrap();
        assert!(i5.self_constrained);
        assert_eq!(
            i5.obligations.iter().map(shape).collect::<Vec<_>>(),
            vec![ob(ObligationKind::Parent, false, t("t4"))]
        );
        assert_eq!(i5.obligations[0].source, Some(find("t4")));

        let i2 = infos[find("t2").index()].as_ref().unwrap();
        assert!(i2.self_constrained);
        let shapes: Vec<_> = i2.obligations.iter().map(shape).collect();
        assert_eq!(
            shapes,
            vec![
                ob(ObligationKind::Ancestor, true, t("t5")),
                ob(ObligationKind::Ancestor, true, t("t4")),
            ]
        );
        // Constrained obligations never carry sources.
        assert!(i2.obligations.iter().all(|o| o.source.is_none()));
    }

    #[test]
    fn d_child_leaf_gives_plain_ancestor_obligation() {
        let mut tys = TypeInterner::new();
        let q = parse_pattern("a*//b", &mut tys).unwrap();
        let infos = propagate(&q);
        let root_info = infos[q.root().index()].as_ref().unwrap();
        assert!(root_info.self_constrained);
        assert_eq!(root_info.obligations.len(), 1);
        let o = &root_info.obligations[0];
        assert_eq!(o.kind, ObligationKind::Ancestor);
        assert!(!o.constrained);
        assert!(o.source.is_some());
    }

    #[test]
    fn constrained_child_gives_constrained_argument() {
        let mut tys = TypeInterner::new();
        let q = parse_pattern("a*/b/c", &mut tys).unwrap();
        let infos = propagate(&q);
        let root_info = infos[q.root().index()].as_ref().unwrap();
        let shapes: Vec<_> = root_info.obligations.iter().map(shape).collect();
        let t = |n: &str| tys.lookup(n).unwrap();
        assert_eq!(
            shapes,
            vec![
                ob(ObligationKind::Parent, true, t("b")),
                ob(ObligationKind::Ancestor, true, t("c")),
            ]
        );
    }

    #[test]
    fn merging_children_concatenates_contributions() {
        let mut tys = TypeInterner::new();
        let q = parse_pattern("r*[/x][//y]//y", &mut tys).unwrap();
        let infos = propagate(&q);
        let root_info = infos[q.root().index()].as_ref().unwrap();
        // Two plain a-obligations of type y (distinct sources) + one p x.
        let t = |n: &str| tys.lookup(n).unwrap();
        let y_obs: Vec<_> = root_info.obligations.iter().filter(|o| o.ty == t("y")).collect();
        assert_eq!(y_obs.len(), 2);
        assert!(y_obs.iter().all(|o| !o.constrained && o.source.is_some()));
        assert_ne!(y_obs[0].source, y_obs[1].source);
    }

    #[test]
    fn deep_obligations_dedup() {
        let mut tys = TypeInterner::new();
        // Two branches both containing deep c's: only one a~ c at the root.
        let q = parse_pattern("r*[/x/c][/y/c]", &mut tys).unwrap();
        let infos = propagate(&q);
        let root_info = infos[q.root().index()].as_ref().unwrap();
        let t = |n: &str| tys.lookup(n).unwrap();
        let c_obs: Vec<_> = root_info.obligations.iter().filter(|o| o.ty == t("c")).collect();
        assert_eq!(c_obs.len(), 1, "constrained duplicates merge");
        assert!(c_obs[0].constrained);
    }
}
