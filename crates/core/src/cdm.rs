//! CDM — Constraint-Dependent Minimization by local pruning
//! (Sections 5.4–5.5).
//!
//! CDM walks the query bottom-up, propagating information content
//! ([`crate::info`]) and, at each node, applying the minimization rules of
//! Figure 6, which are exactly the four local-redundancy conditions of
//! Section 5.4. A leaf `l` of type `t2` under node `v` of type `t1` is
//! *locally redundant* when (with `Σ` logically closed):
//!
//! 1. `l` is a c-child and `t1 -> t2 ∈ Σ`;
//! 2. `l` is a d-child and `t1 ->> t2 ∈ Σ`;
//! 3. `l` is a c-child and `v` has another c-child of type `t` with
//!    `t ~ t2 ∈ Σ`;
//! 4. `l` is a d-child and `v` has a descendant `w` of type `t` (at any
//!    depth, witnessed by an obligation in `v`'s information content) with
//!    `t ->> t2 ∈ Σ` or `t ~ t2 ∈ Σ`.
//!
//! Only *plain* obligations (direct unconstrained leaves) are removal
//! targets; any live obligation can witness. Removing a leaf can make its
//! parent a leaf, which the parent's parent then sees as a plain
//! obligation — the single post-order sweep handles the cascade, and the
//! driver re-sweeps until a fixpoint for good measure.
//!
//! CDM is *incomplete* (Theorem 5.2 gives local minimality only) but fast:
//! its cost is `O(min(n · maxd · maxf, n²))` and independent of the size
//! of the constraint repository (every rule check is a hash probe keyed by
//! a type pair — Figure 8(a)).

use crate::info::{InfoContent, Obligation, ObligationKind};
use crate::stats::MinimizeStats;
use std::time::Instant;
use tpq_base::{Guard, Result};
use tpq_constraints::ConstraintSet;
use tpq_pattern::{NodeId, TreePattern};

/// Minimize `q` by local pruning under `ics` (closure computed
/// internally). Returns the compacted, locally minimal query.
pub fn cdm(q: &TreePattern, ics: &ConstraintSet) -> TreePattern {
    cdm_with_stats(q, ics, &mut MinimizeStats::default())
}

/// [`cdm`] with statistics collection.
pub fn cdm_with_stats(
    q: &TreePattern,
    ics: &ConstraintSet,
    stats: &mut MinimizeStats,
) -> TreePattern {
    let t0 = Instant::now();
    let closed = ics.closure();
    let mut work = q.clone();
    cdm_in_place(&mut work, &closed, stats);
    let (compacted, _) = work.compact();
    stats.total_time += t0.elapsed();
    compacted
}

/// CDM given an **already logically closed** constraint set; excludes
/// closure computation (cf. [`crate::acim::acim_closed`]). Returns the
/// compacted result.
pub fn cdm_closed(
    q: &TreePattern,
    closed: &ConstraintSet,
    stats: &mut MinimizeStats,
) -> TreePattern {
    let t0 = Instant::now();
    let mut work = q.clone();
    cdm_in_place(&mut work, closed, stats);
    let (compacted, _) = work.compact();
    stats.total_time += t0.elapsed();
    compacted
}

/// Run CDM on `q` in place. `closed` **must** be logically closed (the
/// rules consult it directly; an unclosed set silently misses
/// redundancies). Returns the number of leaves removed.
pub fn cdm_in_place(
    q: &mut TreePattern,
    closed: &ConstraintSet,
    stats: &mut MinimizeStats,
) -> usize {
    cdm_in_place_guarded(q, closed, stats, &Guard::unlimited())
        .expect("unlimited guard cannot trip")
}

/// [`cdm_in_place`] under a [`Guard`]: checked at each fixpoint-sweep
/// head and spent once per post-order frame. On a trip `q` is left
/// partially pruned but still equivalent under the constraints (every
/// removal applied was individually justified by a Figure 6 rule);
/// callers wanting all-or-nothing semantics work on a clone.
pub fn cdm_in_place_guarded(
    q: &mut TreePattern,
    closed: &ConstraintSet,
    stats: &mut MinimizeStats,
    guard: &Guard,
) -> Result<usize> {
    let _span = tpq_obs::span!("cdm");
    let mut total = 0;
    loop {
        guard.check()?;
        let removed_before = total;
        let root = q.root();
        let _ = process(q, closed, root, &mut total, guard)?;
        stats.cdm_removed += total - removed_before;
        tpq_obs::incr("cdm_removed", (total - removed_before) as u64);
        if total == removed_before {
            break;
        }
    }
    Ok(total)
}

/// Post-order: minimize the whole tree below `start` (inclusive),
/// returning `start`'s final information content. Iterative with an
/// explicit frame stack — safe on arbitrarily deep queries.
fn process(
    q: &mut TreePattern,
    closed: &ConstraintSet,
    start: NodeId,
    removed: &mut usize,
    guard: &Guard,
) -> Result<InfoContent> {
    struct Frame {
        node: NodeId,
        children: Vec<NodeId>,
        next: usize,
        infos: Vec<(NodeId, InfoContent)>,
    }
    fn frame(q: &TreePattern, node: NodeId) -> Frame {
        let children: Vec<NodeId> =
            q.node(node).children.iter().copied().filter(|&c| q.is_alive(c)).collect();
        Frame { node, infos: Vec::with_capacity(children.len()), children, next: 0 }
    }
    let mut stack = vec![frame(q, start)];
    let mut returned: Option<InfoContent> = None;
    loop {
        let top = stack.last_mut().expect("loop exits before the stack empties");
        if let Some(info) = returned.take() {
            let child = top.children[top.next - 1];
            top.infos.push((child, info));
        }
        if top.next < top.children.len() {
            let c = top.children[top.next];
            top.next += 1;
            guard.spend(1)?;
            let f = frame(q, c);
            stack.push(f);
            continue;
        }
        let done = stack.pop().expect("just peeked");
        let info = minimize_at(q, closed, done.node, done.infos, removed);
        match stack.is_empty() {
            true => return Ok(info),
            false => returned = Some(info),
        }
    }
}

/// Apply the Figure 6 rules at `v` against its surviving children's
/// information contents, then build `v`'s own content.
fn minimize_at(
    q: &mut TreePattern,
    closed: &ConstraintSet,
    v: NodeId,
    mut child_infos: Vec<(NodeId, InfoContent)>,
    removed: &mut usize,
) -> InfoContent {
    // Minimization rules at v: repeat until no plain obligation is
    // removable (each removal can invalidate later witnesses, so rebuild).
    loop {
        let obligations = gather(q, v, &child_infos);
        let target = obligations.iter().enumerate().find_map(|(i, o)| {
            let l = o.source?;
            if o.constrained || l == q.output() || q.node(l).temporary {
                return None;
            }
            removable(q.node(v).primary, o, i, &obligations, closed).map(|why| (l, why))
        });
        match target {
            Some((l, why)) => {
                if tpq_obs::enabled() {
                    use tpq_obs::FieldValue::{Str, U64};
                    let mut fields = vec![
                        ("node", U64(l.0 as u64)),
                        ("at", U64(v.0 as u64)),
                        ("rule", U64(why.rule as u64)),
                        ("lhs", U64(why.lhs.0 as u64)),
                        ("op", Str(why.op)),
                        ("rhs", U64(why.rhs.0 as u64)),
                    ];
                    if let Some(w) = why.witness {
                        fields.push(("witness_ty", U64(w.0 as u64)));
                    }
                    tpq_obs::event("cdm.prune", &fields);
                }
                q.remove_leaf(l).expect("plain obligation sources are removable leaves");
                child_infos.retain(|&(c, _)| c != l);
                *removed += 1;
            }
            None => break,
        }
    }
    // Build v's final information content from the survivors.
    let mut info = InfoContent::leaf(q.node(v).primary);
    for (c, child_info) in &child_infos {
        info.absorb_child(q, *c, child_info);
    }
    info
}

/// The current obligation list at `v` given its surviving children's
/// contents.
fn gather(q: &TreePattern, v: NodeId, child_infos: &[(NodeId, InfoContent)]) -> Vec<Obligation> {
    let mut scratch = InfoContent::leaf(q.node(v).primary);
    for (c, info) in child_infos {
        scratch.absorb_child(q, *c, info);
    }
    scratch.obligations
}

/// Why a plain obligation is locally redundant: the Figure 6 rule number
/// and the closed-set constraint `lhs op rhs` that fired, with the
/// witnessing obligation's type for the sibling rules (3 and 4). Feeds
/// the `cdm.prune` decision event and, through it, `tpq explain`.
struct CdmReason {
    rule: u8,
    lhs: tpq_base::TypeId,
    op: &'static str,
    rhs: tpq_base::TypeId,
    witness: Option<tpq_base::TypeId>,
}

/// Figure 6 / the four conditions: is the plain obligation `target`
/// (at a node of type `t_v`) redundant? `Some` carries the rule that
/// justified it.
fn removable(
    t_v: tpq_base::TypeId,
    target: &Obligation,
    target_idx: usize,
    obligations: &[Obligation],
    closed: &ConstraintSet,
) -> Option<CdmReason> {
    let t2 = target.ty;
    // Value-based conditions (Section 7): ICs guarantee existence by type
    // only, so IC-based removals need a condition-free target, and a
    // witness must entail the target's conditions.
    let unconditioned = target.conditions.is_empty();
    let witness_ok = |o1: &crate::info::Obligation| {
        tpq_pattern::condition::entails(&o1.conditions, &target.conditions)
    };
    match target.kind {
        ObligationKind::Ancestor => {
            // Condition 2: the node's own type requires a t2 descendant.
            if unconditioned && closed.has_required_descendant(t_v, t2) {
                return Some(CdmReason { rule: 2, lhs: t_v, op: "->>", rhs: t2, witness: None });
            }
            // Condition 4: any other descendant witnesses it.
            obligations.iter().enumerate().find_map(|(i, o1)| {
                if i == target_idx {
                    return None;
                }
                if closed.has_required_descendant(o1.ty, t2) && unconditioned {
                    Some(CdmReason {
                        rule: 4,
                        lhs: o1.ty,
                        op: "->>",
                        rhs: t2,
                        witness: Some(o1.ty),
                    })
                } else if closed.has_cooccurrence(o1.ty, t2) && witness_ok(o1) {
                    Some(CdmReason { rule: 4, lhs: o1.ty, op: "~", rhs: t2, witness: Some(o1.ty) })
                } else {
                    None
                }
            })
        }
        ObligationKind::Parent => {
            // Condition 1: the node's own type requires a t2 child.
            if unconditioned && closed.has_required_child(t_v, t2) {
                return Some(CdmReason { rule: 1, lhs: t_v, op: "->", rhs: t2, witness: None });
            }
            // Condition 3: a sibling c-child co-occurs with t2.
            obligations.iter().enumerate().find_map(|(i, o1)| {
                (i != target_idx
                    && o1.kind == ObligationKind::Parent
                    && closed.has_cooccurrence(o1.ty, t2)
                    && witness_ok(o1))
                .then_some(CdmReason {
                    rule: 3,
                    lhs: o1.ty,
                    op: "~",
                    rhs: t2,
                    witness: Some(o1.ty),
                })
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent_under;
    use tpq_base::TypeInterner;
    use tpq_constraints::parse_constraints;
    use tpq_pattern::{isomorphic, parse_pattern};

    fn run(q: &str, ics: &str) -> (TreePattern, TreePattern, ConstraintSet, TypeInterner) {
        let mut tys = TypeInterner::new();
        let pat = parse_pattern(q, &mut tys).unwrap();
        let set = parse_constraints(ics, &mut tys).unwrap();
        let out = cdm(&pat, &set);
        (pat, out, set, tys)
    }

    #[test]
    fn condition_1_required_child() {
        let (q, m, ics, mut tys) = run("Book*[/Title][/Publisher]", "Book -> Publisher");
        let want = parse_pattern("Book*/Title", &mut tys).unwrap();
        assert!(isomorphic(&m, &want));
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn condition_2_required_descendant() {
        let (q, m, ics, mut tys) = run("Book*[//LastName][/Title]", "Book ->> LastName");
        let want = parse_pattern("Book*/Title", &mut tys).unwrap();
        assert!(isomorphic(&m, &want));
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn required_child_ic_does_not_remove_d_leaf_or_vice_versa() {
        // a ->> b does not justify removing a c-child b.
        let (_, m, _, _) = run("a*[/b][/c]", "a ->> b");
        assert_eq!(m.size(), 3);
        // a -> b DOES justify removing a d-child b (closure: a ->> b).
        let (_, m2, _, _) = run("a*[//b][/c]", "a -> b");
        assert_eq!(m2.size(), 2);
    }

    #[test]
    fn condition_3_sibling_cooccurrence() {
        // Figure 2(f) core: Employee c-child is subsumed by the PermEmp
        // c-child since PermEmp ~ Employee.
        let (q, m, ics, _) = run("Organization*[/Employee][/PermEmp]", "PermEmp ~ Employee");
        assert_eq!(m.size(), 2);
        // The PermEmp child must be the survivor.
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn condition_3_needs_c_children_both_ways() {
        // A d-child witness cannot subsume a c-child target.
        let (_, m, _, _) = run("Organization*[/Employee][//PermEmp]", "PermEmp ~ Employee");
        assert_eq!(m.size(), 3, "c-child Employee must survive");
        // But a c-child witness subsumes a d-child target (condition 4).
        let (_, m2, _, _) = run("Organization*[//Employee][/PermEmp]", "PermEmp ~ Employee");
        assert_eq!(m2.size(), 2);
    }

    #[test]
    fn condition_4_deep_witness() {
        // The Paragraph d-leaf under Article is witnessed by the deep
        // Section node (Section ->> Paragraph), Figure 2(b) reasoning.
        let (q, m, ics, mut tys) =
            run("Article*[//Paragraph]//Section//Paragraph", "Section ->> Paragraph");
        // Both Paragraphs go: the deep one by condition 2 at Section, the
        // shallow one by condition 4 at Article (witness Section).
        let want = parse_pattern("Article*//Section", &mut tys).unwrap();
        assert!(isomorphic(&m, &want), "got {} nodes", m.size());
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn cascade_within_one_sweep() {
        // Removing c (child of b) makes b a leaf, which is then removable
        // at a: a -> b, b -> c.
        let (q, m, ics, _) = run("a*[/x]/b/c", "a -> b\nb -> c");
        assert_eq!(m.size(), 2, "only a*[/x] remains");
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn mutual_cooccurrence_keeps_one_leaf() {
        let (q, m, ics, _) = run("r*[/a][/b]", "a ~ b\nb ~ a");
        assert_eq!(m.size(), 2, "exactly one of the twins survives");
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn no_constraints_means_no_removals() {
        let (_, m, _, _) = run("Dept*[//DBProject]//Manager//DBProject", "");
        // The CIM-redundancy in this query is NOT local; CDM must leave it.
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn output_leaf_never_removed() {
        let (_, m, _, _) = run("Book[/Publisher*][/Title]", "Book -> Publisher");
        assert_eq!(m.size(), 3, "the marked Publisher must survive");
        assert!(m.node(m.output()).output);
    }

    #[test]
    fn constrained_subtrees_never_removed() {
        // Publisher has structure below it; the IC only guarantees a bare
        // Publisher.
        let (_, m, _, _) = run("Book*[/Title][/Publisher/Name]", "Book -> Publisher");
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn figure_5_example_full_run() {
        // Example 5.1/5.2. Query: t1* with c-child t2 (d-children t5/t4 ...)
        // reconstructed shape:
        //   t1*[ //t2[//t5/t4][/t6] ][ /t3//t7 ][ //t4/t8 ]  (illustrative)
        // Here we use the paper's applied ICs: t2 -> t6, t5 -> t6 style
        // local removals. We exercise a compact variant:
        //   t1*[//t2[//t5[/t6]][/t6]] with t5 -> t6 and t2 -> t6:
        //   both t6 leaves vanish.
        let (q, m, ics, _) = run("t1*[//t2[//t5[/t6]][/t6]]", "t5 -> t6\nt2 -> t6");
        assert_eq!(m.size(), 3);
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn result_is_locally_minimal() {
        // Theorem 5.2: no leaf of the result is locally redundant.
        let cases = [
            ("Book*[/Title][/Publisher][//LastName]", "Book -> Publisher\nBook ->> LastName"),
            ("a*[//b][/c[/d]][//d]", "c -> d\na ->> b"),
            ("r*[/a][/b][//c]", "a ~ b\nb ~ a\na ->> c"),
        ];
        for (qs, is) in cases {
            let (_, m, ics, _) = run(qs, is);
            let closed = ics.closure();
            assert!(
                crate::local::locally_redundant_leaves(&m, &closed).is_empty(),
                "{qs}: locally redundant leaf remains"
            );
        }
    }

    #[test]
    fn cdm_is_idempotent() {
        let (_, m, ics, _) =
            run("Book*[/Title][/Publisher][//LastName]", "Book -> Publisher\nBook ->> LastName");
        let again = cdm(&m, &ics);
        assert!(isomorphic(&m, &again));
    }

    #[test]
    fn unclosed_set_is_closed_internally_by_cdm() {
        // cdm() closes; a -> b plus b ~ c implies a -> c.
        let (q, m, ics, _) = run("a*[/c][/x]", "a -> b\nb ~ c");
        assert_eq!(m.size(), 2);
        assert!(equivalent_under(&q, &m, &ics));
    }
}
