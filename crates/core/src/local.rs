//! Direct audit of local redundancy (Section 5.4).
//!
//! [`locally_redundant_leaves`] implements the four conditions of
//! Section 5.4 *literally* — walking parents, siblings and descendant sets
//! with no information-content machinery. It exists to validate CDM:
//! Theorem 5.2 says CDM's output contains no locally redundant leaf, and
//! the property tests check exactly that with this function.

use tpq_base::TypeId;
use tpq_constraints::ConstraintSet;
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// All alive leaves of `q` that are locally redundant with respect to the
/// **closed** constraint set `closed`, in pre-order.
pub fn locally_redundant_leaves(q: &TreePattern, closed: &ConstraintSet) -> Vec<NodeId> {
    q.pre_order()
        .into_iter()
        .filter(|&l| {
            q.node(l).is_leaf()
                && l != q.root()
                && l != q.output()
                && !q.node(l).temporary
                && is_locally_redundant(q, closed, l)
        })
        .collect()
}

fn is_locally_redundant(q: &TreePattern, closed: &ConstraintSet, l: NodeId) -> bool {
    let v = q.node(l).parent.expect("non-root leaf has a parent");
    let t1 = q.node(v).primary;
    let t2 = q.node(l).primary;
    // Value-based conditions (Section 7): IC-based removals need a
    // condition-free leaf; co-occurrence witnesses must entail the leaf's
    // conditions.
    let unconditioned = q.node(l).conditions.is_empty();
    let entailed_by =
        |w: NodeId| tpq_pattern::condition::entails(&q.node(w).conditions, &q.node(l).conditions);
    match q.node(l).edge {
        EdgeKind::Child => {
            // Condition (i): t1 -> t2.
            if unconditioned && closed.has_required_child(t1, t2) {
                return true;
            }
            // Condition (iii): another c-child of v of a type co-occurring
            // with t2.
            q.node(v).children.iter().copied().filter(|&c| c != l && q.is_alive(c)).any(|c| {
                q.node(c).edge == EdgeKind::Child
                    && closed.has_cooccurrence(q.node(c).primary, t2)
                    && entailed_by(c)
            })
        }
        EdgeKind::Descendant => {
            // Condition (ii): t1 ->> t2.
            if unconditioned && closed.has_required_descendant(t1, t2) {
                return true;
            }
            // Condition (iv): a descendant w of v (other than l) whose type
            // requires or co-occurs with t2.
            descendants_except(q, v, l).into_iter().any(|w| {
                let tw: TypeId = q.node(w).primary;
                (unconditioned && closed.has_required_descendant(tw, t2))
                    || (closed.has_cooccurrence(tw, t2) && entailed_by(w))
            })
        }
    }
}

fn descendants_except(q: &TreePattern, v: NodeId, skip: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> =
        q.node(v).children.iter().copied().filter(|&c| q.is_alive(c)).collect();
    while let Some(n) = stack.pop() {
        if n == skip {
            continue;
        }
        out.push(n);
        stack.extend(q.node(n).children.iter().copied().filter(|&c| q.is_alive(c)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::TypeInterner;
    use tpq_constraints::parse_constraints;
    use tpq_pattern::parse_pattern;

    fn audit(q: &str, ics: &str) -> usize {
        let mut tys = TypeInterner::new();
        let pat = parse_pattern(q, &mut tys).unwrap();
        let closed = parse_constraints(ics, &mut tys).unwrap().closure();
        locally_redundant_leaves(&pat, &closed).len()
    }

    #[test]
    fn each_condition_detected() {
        assert_eq!(audit("Book*[/Publisher][/x]", "Book -> Publisher"), 1);
        assert_eq!(audit("Book*[//LastName][/x]", "Book ->> LastName"), 1);
        assert_eq!(audit("O*[/Employee][/PermEmp]", "PermEmp ~ Employee"), 1);
        assert_eq!(audit("Article*[//Paragraph]//Section/x", "Section ->> Paragraph"), 1);
    }

    #[test]
    fn edge_kind_mismatches_not_detected() {
        // ->> does not justify a c-child; -> does justify a d-child (via
        // closure) — audit takes the closed set, so test accordingly.
        assert_eq!(audit("a*[/b][/x]", "a ->> b"), 0);
        assert_eq!(audit("a*[//b][/x]", "a -> b"), 1);
    }

    #[test]
    fn deep_witness_only_counts_for_d_children() {
        // c-child Employee cannot be justified by a deep PermEmp.
        assert_eq!(audit("O*[/Employee]//D/PermEmp", "PermEmp ~ Employee"), 0);
        // d-child Employee can.
        assert_eq!(audit("O*[//Employee]//D/PermEmp", "PermEmp ~ Employee"), 1);
    }

    #[test]
    fn output_and_internal_nodes_ignored() {
        assert_eq!(audit("Book[/Publisher*]", "Book -> Publisher"), 0);
        assert_eq!(audit("Book*/Publisher/x", "Book -> Publisher"), 0);
    }

    #[test]
    fn mutual_twins_both_flagged() {
        // The audit flags both (removing either is valid); CDM then removes
        // only one.
        assert_eq!(audit("r*[/a][/b]", "a ~ b\nb ~ a"), 2);
    }

    #[test]
    fn no_ics_nothing_local() {
        assert_eq!(audit("Dept*[//DBProject]//Manager//DBProject", ""), 0);
    }
}
