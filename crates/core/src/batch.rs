//! Parallel batch minimization with a canonical-pattern memo cache.
//!
//! The paper's motivating deployment (Section 1) minimizes *many* queries
//! against *one* schema. [`BatchMinimizer`] makes that the unit of work:
//! it owns one closed constraint set (computed once) plus a memo cache
//! keyed by [`TreePattern::canonical_key`], and fans a `Vec` of queries
//! out over the scoped work-stealing pool in [`tpq_base::pool`].
//!
//! Queries that are **isomorphic** to one another — the common case in
//! query-optimizer traffic, where the same generated pattern arrives over
//! and over with different node numbering — are minimized once: the
//! canonical key folds duplicates before any worker runs, and the cache
//! persists across batches so a warmed engine answers repeats without
//! running CDM or ACIM at all. Theorem 5.1 (minimal queries are unique up
//! to isomorphism) is what makes serving a cached result sound.
//!
//! Output is **deterministic**: results come back in input order and do
//! not depend on the worker count, because keys are assigned before the
//! fan-out and each unique pattern is minimized exactly once.
//!
//! The batch is **fault-isolated**: every task runs behind the pool's
//! panic shield, so one pattern that panics (or trips a [`Guard`] limit
//! in [`minimize_batch_guarded`](BatchMinimizer::minimize_batch_guarded))
//! becomes an error entry in its own slot while the remaining patterns
//! complete normally — the process never aborts.
//!
//! Observability (when the `tpq-obs` layer is enabled): counters
//! `batch.cache.hit`, `batch.cache.miss`, `batch.steal`, `pool.panic` and
//! per-worker latency histograms `batch.worker.N` (see
//! `docs/OBSERVABILITY.md`).
//!
//! ```
//! use tpq_base::TypeInterner;
//! use tpq_constraints::parse_constraints;
//! use tpq_core::batch::BatchMinimizer;
//! use tpq_pattern::parse_pattern;
//!
//! let mut tys = TypeInterner::new();
//! let ics = parse_constraints("Book -> Title", &mut tys).unwrap();
//! let engine = BatchMinimizer::new(&ics);
//! let queries = vec![
//!     parse_pattern("Book*[/Title][/Author]", &mut tys).unwrap(),
//!     parse_pattern("Book*[/Author][/Title]", &mut tys).unwrap(), // isomorphic
//! ];
//! let out = engine.minimize_batch(&queries, 2);
//! assert_eq!(out.patterns.len(), 2);
//! assert_eq!(out.stats.unique, 1, "duplicate folded by the memo cache");
//! assert_eq!(out.patterns[0].size(), 2);
//! ```

use crate::pipeline::{MinimizeOutcome, Strategy};
use crate::session::minimize_closed_guarded;
use crate::stats::MinimizeStats;
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};
use tpq_base::pool::{scoped_map_isolated, PoolStats};
use tpq_base::{FxHashMap, Guard, Result};
use tpq_constraints::ConstraintSet;
use tpq_pattern::{CanonicalKey, TreePattern};

/// Static span names so per-worker latency lands in distinct histograms
/// without allocating names (the registry is keyed by `&'static str`).
/// Workers beyond the table share the overflow bucket.
const WORKER_SPANS: [&str; 16] = [
    "batch.worker.0",
    "batch.worker.1",
    "batch.worker.2",
    "batch.worker.3",
    "batch.worker.4",
    "batch.worker.5",
    "batch.worker.6",
    "batch.worker.7",
    "batch.worker.8",
    "batch.worker.9",
    "batch.worker.10",
    "batch.worker.11",
    "batch.worker.12",
    "batch.worker.13",
    "batch.worker.14",
    "batch.worker.15",
];

fn worker_span(worker: usize) -> &'static str {
    WORKER_SPANS.get(worker).copied().unwrap_or("batch.worker.overflow")
}

/// A batch minimization session: one closed constraint set, one strategy,
/// and a memo cache of minimized patterns keyed by canonical form.
///
/// The cache is internally synchronized — `minimize_batch` takes `&self`,
/// so one engine can serve concurrent callers.
#[derive(Debug)]
pub struct BatchMinimizer {
    closed: ConstraintSet,
    strategy: Strategy,
    cache: RwLock<FxHashMap<CanonicalKey, TreePattern>>,
}

/// What one batch run did, beyond the per-query results.
#[derive(Debug, Clone, Default)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Distinct canonical patterns that had to be minimized.
    pub unique: usize,
    /// Queries answered from the memo cache (persistent hits plus
    /// in-batch duplicates of an already-scheduled pattern).
    pub cache_hits: u64,
    /// Queries that ran the minimization pipeline.
    pub cache_misses: u64,
    /// Work-stealing events in the pool.
    pub steals: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Items executed per worker.
    pub executed_per_worker: Vec<u64>,
    /// Wall time of the whole batch, including the key pass.
    pub wall_time: Duration,
    /// Algorithm counters summed over every minimization actually run.
    pub minimize: MinimizeStats,
    /// Queries that ended in an error entry (budget trips, injected
    /// faults, captured panics). Always 0 through the infallible
    /// [`BatchMinimizer::minimize_batch`] path.
    pub failed: usize,
    /// Worker panics captured by the pool's per-task shield.
    pub panics: u64,
}

impl BatchStats {
    /// Fraction of queries answered from the memo cache, in `[0, 1]`
    /// (0 on an empty batch).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Machine-readable snapshot of the batch run, consumed by the bench
    /// harness's persisted trajectories and the CLI's `--stats` output.
    pub fn to_json(&self) -> tpq_base::Json {
        use tpq_base::Json;
        Json::object(vec![
            ("queries", Json::Int(self.queries as i64)),
            ("unique", Json::Int(self.unique as i64)),
            ("cache_hits", Json::Int(self.cache_hits as i64)),
            ("cache_misses", Json::Int(self.cache_misses as i64)),
            ("cache_hit_rate", Json::Float(self.cache_hit_rate())),
            ("steals", Json::Int(self.steals as i64)),
            ("workers", Json::Int(self.workers as i64)),
            (
                "executed_per_worker",
                Json::Array(
                    self.executed_per_worker.iter().map(|&n| Json::Int(n as i64)).collect(),
                ),
            ),
            ("wall_micros", Json::Float(self.wall_time.as_secs_f64() * 1e6)),
            ("failed", Json::Int(self.failed as i64)),
            ("panics", Json::Int(self.panics as i64)),
            ("minimize", self.minimize.to_json()),
        ])
    }
}

/// Result of [`BatchMinimizer::minimize_batch`]: one minimized pattern per
/// input query, in input order.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Minimized (compacted) patterns, parallel to the input slice.
    pub patterns: Vec<TreePattern>,
    /// Batch-level measurements.
    pub stats: BatchStats,
}

/// Result of [`BatchMinimizer::minimize_batch_guarded`]: one `Result` per
/// input query, in input order. A query whose minimization tripped the
/// guard, hit an armed failpoint or panicked carries its error in place;
/// the other slots still hold their minimized patterns.
#[derive(Debug, Clone)]
pub struct GuardedBatchOutcome {
    /// Per-query results, parallel to the input slice.
    pub results: Vec<Result<TreePattern>>,
    /// Batch-level measurements.
    pub stats: BatchStats,
}

/// How each input query gets its result: from the persistent cache, or
/// from slot `i` of this batch's unique-work list.
enum Plan {
    Cached(TreePattern),
    Computed(usize),
}

/// Result of [`BatchMinimizer::minimize_cached_guarded`]: the minimized
/// pattern plus where it came from.
#[derive(Debug, Clone)]
pub struct CachedOutcome {
    /// The minimized (compacted) query.
    pub pattern: TreePattern,
    /// Whether the memo cache answered without running the pipeline.
    pub cache_hit: bool,
    /// Algorithm counters of the run (all zero on a cache hit — the
    /// cached answer cost nothing).
    pub stats: MinimizeStats,
}

impl BatchMinimizer {
    /// Build from a (not necessarily closed) constraint set with the
    /// default strategy. The quadratic closure is computed once, here.
    pub fn new(ics: &ConstraintSet) -> Self {
        Self::with_strategy(ics, Strategy::default())
    }

    /// Build with an explicit strategy.
    pub fn with_strategy(ics: &ConstraintSet, strategy: Strategy) -> Self {
        BatchMinimizer { closed: ics.closure(), strategy, cache: RwLock::new(FxHashMap::default()) }
    }

    /// Rebuild an engine from an **already-closed** constraint set,
    /// skipping the quadratic closure — the deserialization half of
    /// warm-restart snapshots. `closed` must be its own closure (snapshot
    /// files are checksummed, so a faithful restore guarantees this); an
    /// unclosed set would silently weaken every minimization the engine
    /// performs.
    pub fn from_parts(closed: ConstraintSet, strategy: Strategy) -> Self {
        debug_assert!(closed.is_closed(), "from_parts requires a closed constraint set");
        BatchMinimizer { closed, strategy, cache: RwLock::new(FxHashMap::default()) }
    }

    /// Snapshot the canonical-pattern memo as `(key, minimized)` pairs,
    /// sorted by key for deterministic serialization.
    pub fn export_memo(&self) -> Vec<(CanonicalKey, TreePattern)> {
        let cache = self.cache.read().expect("batch cache poisoned");
        let mut entries: Vec<(CanonicalKey, TreePattern)> =
            cache.iter().map(|(k, p)| (k.clone(), p.clone())).collect();
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        entries
    }

    /// Seed the memo with previously exported entries. Keys must have been
    /// produced under the same [`TypeId`](tpq_base::TypeId) ↔ name
    /// assignment as the patterns this engine will serve (the snapshot
    /// layer verifies this before calling); existing entries win ties.
    pub fn import_memo(&self, entries: impl IntoIterator<Item = (CanonicalKey, TreePattern)>) {
        let mut cache = self.cache.write().expect("batch cache poisoned");
        for (key, pattern) in entries {
            cache.entry(key).or_insert(pattern);
        }
    }

    /// The closed constraint set the engine minimizes under.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.closed
    }

    /// The strategy every query runs with.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Number of distinct canonical patterns memoized so far.
    pub fn cache_len(&self) -> usize {
        self.cache.read().expect("batch cache poisoned").len()
    }

    /// Drop every memoized result (the closed constraint set stays).
    pub fn clear_cache(&self) {
        self.cache.write().expect("batch cache poisoned").clear();
    }

    /// Minimize one query through the cache (a one-element batch without
    /// the pool; useful for mixed single/batch callers that want the memo
    /// behavior everywhere).
    pub fn minimize(&self, q: &TreePattern) -> TreePattern {
        self.minimize_guarded(q, &Guard::unlimited())
            .expect("unlimited guard cannot trip and no failpoint is armed")
    }

    /// [`BatchMinimizer::minimize`] under a [`Guard`]. A cache hit is
    /// served without spending any of the guard's budget; on a miss the
    /// whole minimization pipeline runs guarded and only a successful
    /// result is memoized — a tripped guard leaves the cache unchanged.
    pub fn minimize_guarded(&self, q: &TreePattern, guard: &Guard) -> Result<TreePattern> {
        Ok(self.minimize_cached_guarded(q, guard)?.pattern)
    }

    /// [`BatchMinimizer::minimize_guarded`], reporting cache provenance
    /// and per-run statistics — the entry point `tpq-serve` uses to
    /// answer one request and tell the client whether the memo cache
    /// already knew the pattern.
    pub fn minimize_cached_guarded(&self, q: &TreePattern, guard: &Guard) -> Result<CachedOutcome> {
        let key = q.canonical_key();
        if let Some(hit) = self.cache.read().expect("batch cache poisoned").get(&key) {
            tpq_obs::incr("batch.cache.hit", 1);
            return Ok(CachedOutcome {
                pattern: hit.clone(),
                cache_hit: true,
                stats: MinimizeStats::default(),
            });
        }
        tpq_obs::incr("batch.cache.miss", 1);
        let out = minimize_closed_guarded(q, &self.closed, self.strategy, guard)?;
        self.cache.write().expect("batch cache poisoned").insert(key, out.pattern.clone());
        Ok(CachedOutcome { pattern: out.pattern, cache_hit: false, stats: out.stats })
    }

    /// Minimize every query in `queries` on up to `jobs` worker threads.
    ///
    /// Results are returned in input order and are identical for every
    /// `jobs` value: the sequential key pass fixes which patterns are
    /// computed before any thread runs, so thread scheduling cannot leak
    /// into the output.
    ///
    /// This infallible path panics on the calling thread if a task fails
    /// — which, with no guard and no armed failpoint, only happens when a
    /// minimization itself panics. Callers that want per-query isolation
    /// use [`minimize_batch_guarded`](BatchMinimizer::minimize_batch_guarded).
    pub fn minimize_batch(&self, queries: &[TreePattern], jobs: usize) -> BatchOutcome {
        let run = self.minimize_batch_guarded(queries, jobs, &Guard::unlimited());
        let patterns = run
            .results
            .into_iter()
            .map(|r| match r {
                Ok(p) => p,
                Err(e) => panic!("batch task failed: {e}"),
            })
            .collect();
        BatchOutcome { patterns, stats: run.stats }
    }

    /// [`BatchMinimizer::minimize_batch`] with resource governance and
    /// per-query fault isolation.
    ///
    /// The guard is shared by every worker: a wall-clock deadline or a
    /// cooperative [`cancel`](Guard::cancel) bounds the *whole batch*, and
    /// a step budget is one pooled allowance drawn on by all queries.
    /// Queries answered from the memo cache (including in-batch
    /// duplicates) cost nothing and succeed even after the guard trips.
    ///
    /// Each unique pattern fans out as an isolated task: a budget trip, an
    /// injected failpoint or a panic inside one minimization lands as the
    /// `Err` of that query's slot (duplicates of it share the error) while
    /// every other query completes normally. Only successful results are
    /// memoized. Captured panics bump the `pool.panic` counter; budget
    /// trips bump `guard.timeout` / `guard.budget` / `guard.cancel`.
    pub fn minimize_batch_guarded(
        &self,
        queries: &[TreePattern],
        jobs: usize,
        guard: &Guard,
    ) -> GuardedBatchOutcome {
        let _span = tpq_obs::span!("batch");
        let t0 = Instant::now();

        // Key pass (sequential, cheap next to minimization): fold cache
        // hits and in-batch duplicates, and collect the unique survivors.
        let mut plan: Vec<Plan> = Vec::with_capacity(queries.len());
        let mut unique: Vec<&TreePattern> = Vec::new();
        let mut keys: Vec<CanonicalKey> = Vec::new();
        let mut scheduled: FxHashMap<CanonicalKey, usize> = FxHashMap::default();
        let mut hits = 0u64;
        {
            let cache = self.cache.read().expect("batch cache poisoned");
            for q in queries {
                let key = q.canonical_key();
                if let Some(hit) = cache.get(&key) {
                    hits += 1;
                    plan.push(Plan::Cached(hit.clone()));
                } else if let Some(&slot) = scheduled.get(&key) {
                    hits += 1;
                    plan.push(Plan::Computed(slot));
                } else {
                    let slot = unique.len();
                    scheduled.insert(key.clone(), slot);
                    unique.push(q);
                    keys.push(key);
                    plan.push(Plan::Computed(slot));
                }
            }
        }
        let misses = unique.len() as u64;
        tpq_obs::incr("batch.cache.hit", hits);
        tpq_obs::incr("batch.cache.miss", misses);

        // Fan the unique patterns out over the pool. Each task is
        // isolated: a panic or guard trip stays in its own result slot.
        // Trace identity is thread-local: capture the caller's id and
        // re-establish it on whichever worker runs each task, so events
        // emitted inside the pool keep the request's attribution.
        let trace = tpq_obs::current_trace();
        let (outcomes, pool): (Vec<Result<MinimizeOutcome>>, PoolStats) =
            scoped_map_isolated(jobs, &unique, |ctx, q| {
                let _trace = tpq_obs::trace_scope(trace);
                let t = Instant::now();
                let out = minimize_closed_guarded(q, &self.closed, self.strategy, guard)?;
                tpq_obs::record_duration(worker_span(ctx.worker), t.elapsed());
                Ok(out)
            });
        tpq_obs::incr("batch.steal", pool.steals);
        tpq_obs::incr("pool.panic", pool.panics);

        // Memoize for the next batch — successful results only, so a
        // tripped guard never poisons the cache with a partial answer.
        {
            let mut cache = self.cache.write().expect("batch cache poisoned");
            for (key, out) in keys.into_iter().zip(&outcomes) {
                if let Ok(out) = out {
                    cache.insert(key, out.pattern.clone());
                }
            }
        }

        let mut minimize = MinimizeStats::default();
        for out in outcomes.iter().flatten() {
            minimize.merge(out.stats);
        }
        let results: Vec<Result<TreePattern>> = plan
            .into_iter()
            .map(|p| match p {
                Plan::Cached(pattern) => Ok(pattern),
                Plan::Computed(slot) => match &outcomes[slot] {
                    Ok(out) => Ok(out.pattern.clone()),
                    Err(e) => Err(e.clone()),
                },
            })
            .collect();
        let failed = results.iter().filter(|r| r.is_err()).count();
        GuardedBatchOutcome {
            results,
            stats: BatchStats {
                queries: queries.len(),
                unique: unique.len(),
                cache_hits: hits,
                cache_misses: misses,
                steals: pool.steals,
                workers: pool.workers,
                executed_per_worker: pool.executed,
                wall_time: t0.elapsed(),
                minimize,
                failed,
                panics: pool.panics,
            },
        }
    }
}

/// Engines kept in the process-wide [`shared_engine`] cache. Constraint
/// sets are compared by value, so the probe is `O(|ics|)` — noise next to
/// the quadratic closure and the per-engine memo cache it preserves.
const ENGINE_CACHE_CAPACITY: usize = 8;

/// Cache entries: the original (unclosed) set and strategy, paired with
/// the shared engine built from them.
type EngineCache = Vec<((ConstraintSet, Strategy), Arc<BatchMinimizer>)>;

/// A process-wide [`BatchMinimizer`] for `(ics, strategy)`, built on first
/// use and shared by every later caller with the same key (a small
/// process-wide LRU).
///
/// This is how `tpq-serve` gives every connection one canonical-pattern
/// memo cache and one constraint closure per constraint set: request
/// handlers call `shared_engine` instead of constructing engines, so a
/// pattern minimized on one connection is a cache hit on all of them.
/// The `engine.cache.hit` / `engine.recomputed` counters report reuse.
///
/// **Interner discipline:** engines memoize by [`TreePattern::canonical_key`],
/// which is built from [`TypeId`](tpq_base::TypeId)s. All queries handed to
/// one shared engine must therefore come from one [`TypeInterner`](tpq_base::TypeInterner)
/// (`tpq-serve` maintains a process-wide one) — mixing interners can map
/// different names to the same ids and serve one query's answer to another.
///
/// ```
/// use std::sync::Arc;
/// use tpq_base::{Guard, TypeInterner};
/// use tpq_constraints::parse_constraints;
/// use tpq_core::{shared_engine, Strategy};
/// use tpq_pattern::parse_pattern;
///
/// let mut tys = TypeInterner::new(); // ONE interner for everything below
/// let ics = parse_constraints("Recipe -> Ingredient", &mut tys).unwrap();
/// let engine = shared_engine(&ics, Strategy::default());
/// // A second lookup with an equal key returns the very same engine.
/// assert!(Arc::ptr_eq(&engine, &shared_engine(&ics, Strategy::default())));
///
/// let q = parse_pattern("Recipe*[/Ingredient][/Step]", &mut tys).unwrap();
/// let first = engine.minimize_cached_guarded(&q, &Guard::unlimited()).unwrap();
/// let again = engine.minimize_cached_guarded(&q, &Guard::unlimited()).unwrap();
/// assert!(!first.cache_hit);
/// assert!(again.cache_hit, "second identical query is a memo hit");
/// assert_eq!(first.pattern.size(), 2); // /Ingredient is implied by the IC
/// ```
pub fn shared_engine(ics: &ConstraintSet, strategy: Strategy) -> Arc<BatchMinimizer> {
    let mut entries = engine_cache().lock().expect("engine cache poisoned");
    if let Some(pos) = entries.iter().position(|((set, strat), _)| *strat == strategy && set == ics)
    {
        let hit = entries.remove(pos);
        let engine = Arc::clone(&hit.1);
        entries.insert(0, hit); // move to front (LRU)
        tpq_obs::incr("engine.cache.hit", 1);
        return engine;
    }
    let engine = Arc::new(BatchMinimizer::with_strategy(ics, strategy));
    tpq_obs::incr("engine.recomputed", 1);
    entries.insert(0, ((ics.clone(), strategy), Arc::clone(&engine)));
    entries.truncate(ENGINE_CACHE_CAPACITY);
    engine
}

/// The process-wide engine LRU behind [`shared_engine`].
fn engine_cache() -> &'static Mutex<EngineCache> {
    static CACHE: OnceLock<Mutex<EngineCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshot the process-wide [`shared_engine`] LRU as
/// `(original_set, strategy, engine)` triples in LRU order (most recently
/// used first). The serialization half of warm-restart snapshots.
pub fn export_engines() -> Vec<(ConstraintSet, Strategy, Arc<BatchMinimizer>)> {
    let entries = engine_cache().lock().expect("engine cache poisoned");
    entries
        .iter()
        .map(|((ics, strategy), engine)| (ics.clone(), *strategy, Arc::clone(engine)))
        .collect()
}

/// Seed the process-wide [`shared_engine`] LRU with a rebuilt engine,
/// keyed by the **original** (unclosed) constraint set — the same key a
/// later `shared_engine(&ics, strategy)` probe will present. Replaces any
/// existing entry with the same key; inserted at the LRU front, and the
/// capacity bound still applies.
pub fn seed_engine(ics: ConstraintSet, strategy: Strategy, engine: Arc<BatchMinimizer>) {
    let mut entries = engine_cache().lock().expect("engine cache poisoned");
    entries.retain(|((set, strat), _)| !(*strat == strategy && *set == ics));
    entries.insert(0, ((ics, strategy), engine));
    entries.truncate(ENGINE_CACHE_CAPACITY);
}

/// Empty the process-wide engine LRU (existing [`Arc`] holders keep their
/// engines; only the cache forgets them).
pub fn clear_engine_cache() {
    engine_cache().lock().expect("engine cache poisoned").clear();
}

/// Empty **both** process-wide caches — the [`shared_engine`] LRU and the
/// closure LRU of [`crate::pipeline`]. This is what a true cold start
/// looks like; the warm-restart benchmarks and tests call it between
/// server lifetimes so that in-process "restarts" measure the snapshot,
/// not leftover process state.
pub fn clear_shared_caches() {
    clear_engine_cache();
    crate::pipeline::clear_closure_cache();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Minimizer;
    use tpq_base::{failpoint, Error, TypeInterner};
    use tpq_constraints::parse_constraints;
    use tpq_pattern::{isomorphic, parse_pattern};

    fn setup() -> (BatchMinimizer, Vec<TreePattern>, TypeInterner) {
        let mut tys = TypeInterner::new();
        let ics = parse_constraints("Article -> Title\nSection ->> Paragraph", &mut tys).unwrap();
        let queries: Vec<TreePattern> = [
            "Articles/Article*[/Title]//Section//Paragraph",
            "Article*[/Title]",
            "Article*//Section",
            "Section*//Paragraph",
            "Articles/Article*[/Title]//Section//Paragraph", // exact repeat
        ]
        .iter()
        .map(|s| parse_pattern(s, &mut tys).unwrap())
        .collect();
        (BatchMinimizer::new(&ics), queries, tys)
    }

    #[test]
    fn batch_matches_sequential_session() {
        let (engine, queries, mut tys) = setup();
        let ics = parse_constraints("Article -> Title\nSection ->> Paragraph", &mut tys).unwrap();
        let session = Minimizer::new(&ics);
        for jobs in [1, 2, 4] {
            let out = engine.minimize_batch(&queries, jobs);
            assert_eq!(out.patterns.len(), queries.len());
            for (q, m) in queries.iter().zip(&out.patterns) {
                let want = session.minimize(q).pattern;
                assert!(isomorphic(m, &want), "jobs={jobs}");
            }
        }
    }

    #[test]
    fn duplicates_fold_into_one_computation() {
        let (engine, queries, _) = setup();
        let out = engine.minimize_batch(&queries, 2);
        assert_eq!(out.stats.queries, 5);
        assert_eq!(out.stats.unique, 4, "the repeated query folds");
        assert_eq!(out.stats.cache_hits, 1);
        assert_eq!(out.stats.cache_misses, 4);
        assert!(isomorphic(&out.patterns[0], &out.patterns[4]));
    }

    #[test]
    fn cache_persists_across_batches() {
        let (engine, queries, _) = setup();
        let first = engine.minimize_batch(&queries, 2);
        assert_eq!(engine.cache_len(), 4);
        let second = engine.minimize_batch(&queries, 2);
        assert_eq!(second.stats.cache_hits, 5, "everything warm");
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.unique, 0);
        for (a, b) in first.patterns.iter().zip(&second.patterns) {
            assert_eq!(a, b, "warm results identical, not merely isomorphic");
        }
        engine.clear_cache();
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn isomorphic_queries_share_a_cache_entry() {
        let mut tys = TypeInterner::new();
        let ics = parse_constraints("a -> b", &mut tys).unwrap();
        let engine = BatchMinimizer::new(&ics);
        let q1 = parse_pattern("a*[/b][/c]", &mut tys).unwrap();
        let q2 = parse_pattern("a*[/c][/b]", &mut tys).unwrap(); // sibling order flipped
        let out = engine.minimize_batch(&[q1, q2], 2);
        assert_eq!(out.stats.unique, 1);
        assert_eq!(out.patterns[0], out.patterns[1]);
        assert_eq!(out.patterns[0].size(), 2, "a -> b makes /b redundant");
    }

    #[test]
    fn single_query_path_uses_the_cache() {
        let (engine, queries, _) = setup();
        let a = engine.minimize(&queries[0]);
        assert_eq!(engine.cache_len(), 1);
        let b = engine.minimize(&queries[4]);
        assert_eq!(engine.cache_len(), 1, "isomorphic repeat hits");
        assert_eq!(a, b);
    }

    #[test]
    fn output_independent_of_jobs() {
        let (engine, queries, _) = setup();
        let baseline = engine.minimize_batch(&queries, 1);
        for jobs in 2..=8 {
            let engine2 = {
                let mut tys = TypeInterner::new();
                let ics =
                    parse_constraints("Article -> Title\nSection ->> Paragraph", &mut tys).unwrap();
                BatchMinimizer::new(&ics)
            };
            let out = engine2.minimize_batch(&queries, jobs);
            assert_eq!(out.patterns, baseline.patterns, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_batch() {
        let (engine, _, _) = setup();
        let out = engine.minimize_batch(&[], 4);
        assert!(out.patterns.is_empty());
        assert_eq!(out.stats.unique, 0);
        assert_eq!(out.stats.cache_hits, 0);
        assert_eq!(out.stats.cache_hit_rate(), 0.0, "empty batch has no rate");
    }

    #[test]
    fn batch_stats_serialize_machine_readably() {
        use tpq_base::Json;
        let (engine, queries, _) = setup();
        let out = engine.minimize_batch(&queries, 2);
        let json = out.stats.to_json();
        assert_eq!(json.get("queries").and_then(Json::as_i64), Some(5));
        assert_eq!(json.get("unique").and_then(Json::as_i64), Some(4));
        assert_eq!(json.get("cache_hits").and_then(Json::as_i64), Some(1));
        let rate = json.get("cache_hit_rate").and_then(Json::as_f64).unwrap();
        assert!((rate - 0.2).abs() < 1e-9, "1 hit of 5 → 0.2, got {rate}");
        assert!(json.get("wall_micros").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(json.get("minimize").is_some(), "embeds the MinimizeStats record");
        // The snapshot round-trips through the JSON writer and parser.
        let text = json.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), json);
    }

    #[test]
    fn cancelled_guard_fails_uncached_queries_but_serves_warm_hits() {
        let (engine, queries, _) = setup();
        let warm = engine.minimize(&queries[0]);
        let guard = Guard::cancellable();
        guard.cancel();
        let out = engine.minimize_batch_guarded(&queries, 2, &guard);
        assert_eq!(out.results.len(), queries.len());
        // Slot 0 and its exact repeat in slot 4 come out of the memo
        // cache, untouched by the dead guard.
        assert_eq!(out.results[0].as_ref().unwrap(), &warm);
        assert_eq!(out.results[4].as_ref().unwrap(), &warm);
        for i in [1, 2, 3] {
            let err = out.results[i].as_ref().unwrap_err();
            assert!(err.is_budget(), "slot {i}: {err}");
        }
        assert_eq!(out.stats.failed, 3);
        // Failures were not memoized.
        assert_eq!(engine.cache_len(), 1);
    }

    #[test]
    fn expired_deadline_yields_per_query_deadline_errors() {
        let (engine, queries, _) = setup();
        let guard = Guard::with_deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        let out = engine.minimize_batch_guarded(&queries, 2, &guard);
        for (i, r) in out.results.iter().enumerate() {
            assert!(
                matches!(
                    r,
                    Err(Error::Budget { resource: tpq_base::BudgetResource::Deadline, .. })
                ),
                "slot {i}: {r:?}"
            );
        }
        // The in-batch duplicate shares its representative's error.
        assert_eq!(out.results[0], out.results[4]);
        assert_eq!(out.stats.failed, 5);
        assert_eq!(out.stats.unique, 4);
        assert_eq!(engine.cache_len(), 0, "nothing memoized from a dead batch");
    }

    #[test]
    fn injected_task_panic_stays_in_its_slot() {
        let mut tys = TypeInterner::new();
        let ics = parse_constraints("a -> b", &mut tys).unwrap();
        let engine = BatchMinimizer::new(&ics);
        let queries: Vec<TreePattern> = ["a*[/b]", "b*[/c]", "c*[/d]"]
            .iter()
            .map(|s| parse_pattern(s, &mut tys).unwrap())
            .collect();
        // jobs=1 keeps the fan-out inline on this thread, so the
        // thread-scoped arming is deterministic under parallel tests.
        let _fp = failpoint::arm_for_thread("pool.task", failpoint::Action::Panic, 2);
        let out = engine.minimize_batch_guarded(&queries, 1, &Guard::unlimited());
        assert!(out.results[0].is_ok());
        assert!(out.results[2].is_ok(), "tasks after the panic still complete");
        match &out.results[1] {
            Err(Error::WorkerPanic { message }) => {
                assert!(message.contains("pool.task"), "{message}")
            }
            other => panic!("expected a captured panic, got {other:?}"),
        }
        assert_eq!(out.stats.panics, 1);
        assert_eq!(out.stats.failed, 1);
        // The poisoned slot was not memoized; the survivors were.
        assert_eq!(engine.cache_len(), 2);
    }

    #[test]
    fn guarded_single_query_serves_cache_hits_past_a_dead_guard() {
        let (engine, queries, _) = setup();
        let guard = Guard::cancellable();
        guard.cancel();
        assert!(engine.minimize_guarded(&queries[0], &guard).is_err());
        assert_eq!(engine.cache_len(), 0, "the failure was not memoized");
        let warm = engine.minimize(&queries[0]);
        // A cache hit costs no budget, so even the dead guard serves it.
        assert_eq!(engine.minimize_guarded(&queries[0], &guard).unwrap(), warm);
    }

    #[test]
    fn cached_outcome_reports_provenance() {
        let (engine, queries, _) = setup();
        let guard = Guard::unlimited();
        let cold = engine.minimize_cached_guarded(&queries[0], &guard).unwrap();
        assert!(!cold.cache_hit);
        assert!(cold.stats.redundancy_tests > 0 || cold.stats.total_removed() > 0);
        let warm = engine.minimize_cached_guarded(&queries[0], &guard).unwrap();
        assert!(warm.cache_hit);
        assert_eq!(warm.pattern, cold.pattern);
        assert_eq!(warm.stats.total_removed(), 0, "hits report zero work");
    }

    #[test]
    fn shared_engine_reuses_one_engine_per_key() {
        let mut tys = TypeInterner::new();
        let ics = parse_constraints("Zebra -> Stripe", &mut tys).unwrap();
        let a = shared_engine(&ics, Strategy::CdmThenAcim);
        let b = shared_engine(&ics, Strategy::CdmThenAcim);
        assert!(Arc::ptr_eq(&a, &b), "same set + strategy share an engine");
        let c = shared_engine(&ics, Strategy::CimOnly);
        assert!(!Arc::ptr_eq(&a, &c), "strategy is part of the key");
        // The shared engine's memo cache persists across lookups.
        let q = parse_pattern("Zebra*[/Stripe][/Tail]", &mut tys).unwrap();
        let first = a.minimize_cached_guarded(&q, &Guard::unlimited()).unwrap();
        assert!(!first.cache_hit);
        let again = shared_engine(&ics, Strategy::CdmThenAcim)
            .minimize_cached_guarded(&q, &Guard::unlimited())
            .unwrap();
        assert!(again.cache_hit, "memo survives via the engine cache");
        assert_eq!(again.pattern, first.pattern);
    }

    #[test]
    fn every_strategy_is_supported() {
        let mut tys = TypeInterner::new();
        let ics = parse_constraints("a -> b", &mut tys).unwrap();
        let q = parse_pattern("a*[/b][/c]", &mut tys).unwrap();
        for strategy in
            [Strategy::CimOnly, Strategy::AcimOnly, Strategy::CdmOnly, Strategy::CdmThenAcim]
        {
            let engine = BatchMinimizer::with_strategy(&ics, strategy);
            let out = engine.minimize_batch(std::slice::from_ref(&q), 2);
            let want = Minimizer::with_strategy(&ics, strategy).minimize(&q).pattern;
            assert!(isomorphic(&out.patterns[0], &want), "{strategy:?}");
        }
    }
}
