//! The redundant-leaf test — Figure 3 of the paper.
//!
//! A node of a query is redundant iff there is an endomorphism on the query
//! that is not the identity on it (Proposition 4.1). For a *leaf* `l`,
//! Theorem 4.2 reduces the check to one bottom-up pruning sweep of the
//! images table: initialize `images(l)` to every same-type node *except*
//! `l`, initialize `images(v)` for every other node to all compatible
//! nodes, prune bottom-up, and test `images(root)` for non-emptiness.
//!
//! The implementation follows Figure 3's enhancements: images are pruned
//! only along the ancestor chain of `l` (each ancestor's other subtrees are
//! minimized once, on demand, and marked), and the walk up exits early when
//! `images(v) = ∅` (leaf not redundant — no embedding of `v`'s subtree
//! exists at all) or `v ∈ images(v)` (leaf redundant — the identity extends
//! upward from `v`).

use crate::mapping::{node_compatible, original_children, prune_node, PatIndex};
use crate::stats::MinimizeStats;
use std::time::Instant;
use tpq_base::{Guard, Result};
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// Is the alive leaf `l` of `q` redundant?
///
/// "Leaf" means *no original children*: temporary (augmentation-added)
/// nodes are virtual and do not count — an original node whose only
/// children are temps is a leaf for elimination purposes. Temps
/// participate as mapping targets but must never be passed as `l` — ACIM
/// never tests them.
///
/// # Panics
/// Panics (debug) if `l` is not an alive original leaf or is the output
/// node.
pub fn redundant_leaf(q: &TreePattern, l: NodeId) -> bool {
    redundant_leaf_with_stats(q, l, &mut MinimizeStats::default())
}

/// [`redundant_leaf`] with table-construction time accounting (Figure 7(b)
/// separates "tables time" from total minimization time).
pub fn redundant_leaf_with_stats(q: &TreePattern, l: NodeId, stats: &mut MinimizeStats) -> bool {
    redundant_leaf_guarded(q, l, stats, &Guard::unlimited()).expect("unlimited guard cannot trip")
}

/// [`redundant_leaf_with_stats`] under a [`Guard`]: spends one step per
/// candidate image considered during table construction and one per
/// ancestor pruned on the walk up. A tripped guard aborts the test with
/// [`Err`] — the query is untouched (the test is read-only).
pub fn redundant_leaf_guarded(
    q: &TreePattern,
    l: NodeId,
    stats: &mut MinimizeStats,
    guard: &Guard,
) -> Result<bool> {
    redundant_leaf_witness_guarded(q, l, stats, guard).map(|w| w.is_some())
}

/// [`redundant_leaf_guarded`], additionally returning the node `l` maps
/// onto under one witnessing endomorphism (`None` = not redundant). The
/// witness may be a *temporary* node: that is exactly how ACIM's
/// IC-implied temps justify removals, and `tpq explain` resolves such a
/// witness back to the chase step that created it.
pub fn redundant_leaf_witness_guarded(
    q: &TreePattern,
    l: NodeId,
    stats: &mut MinimizeStats,
    guard: &Guard,
) -> Result<Option<NodeId>> {
    debug_assert!(
        q.is_alive(l) && !q.node(l).temporary && original_children(q, l).is_empty(),
        "l must be an alive original leaf"
    );
    debug_assert!(l != q.output(), "the output node is never tested");
    debug_assert!(l != q.root(), "the root is never tested");

    // --- Table construction (timed): ancestor/descendant table + images. ---
    // Images are keyed by original (non-temporary) nodes — the
    // homomorphism domain. Targets include temporary nodes: that is how
    // ACIM's augmentation makes IC-implied leaves removable.
    let tables_span = tpq_obs::span!("acim.tables");
    let t0 = Instant::now();
    let index = PatIndex::build(q);
    let targets: Vec<NodeId> = q.alive_ids().collect();
    let originals: Vec<NodeId> = q.alive_ids().filter(|&v| !q.node(v).temporary).collect();
    let mut images: Vec<Vec<NodeId>> = vec![Vec::new(); q.arena_len()];
    for &v in &originals {
        guard.spend(targets.len() as u64)?;
        images[v.index()] = targets
            .iter()
            .copied()
            .filter(|&u| !(v == l && u == l) && node_compatible(q, v, q, u))
            .collect();
    }
    stats.tables_time += t0.elapsed();
    drop(tables_span);

    // If no candidate exists for l at all, it cannot move anywhere.
    if images[l.index()].is_empty() {
        return Ok(None);
    }

    // --- Walk up from l, minimizing images on demand (Figure 3). ---
    let _scan_span = tpq_obs::span!("acim.scan");
    let mut marked = vec![false; q.arena_len()];
    marked[l.index()] = true;
    // All (original-children-free) leaves start marked: their images need
    // no pruning.
    for &v in &originals {
        if original_children(q, v).is_empty() {
            marked[v.index()] = true;
        }
    }
    // The chain below the current ancestor, for witness extraction.
    let mut below = vec![l];
    for v in q.ancestors(l) {
        guard.check()?;
        minimize_images(q, &index, v, &mut images, &mut marked);
        if images[v.index()].is_empty() {
            return Ok(None);
        }
        if images[v.index()].contains(&v) {
            return Ok(Some(descend_witness(q, &index, &below, v, &images)));
        }
        below.push(v);
    }
    // Unreachable in theory (at the root one of the two tests above fires:
    // any endomorphism fixes the root, so a non-empty pruned images(root)
    // contains the root); kept as a safe fallback.
    below.pop(); // the root, whose image is chosen directly
    match images[q.root().index()].first().copied() {
        Some(top) => Ok(Some(descend_witness(q, &index, &below, top, &images))),
        None => Ok(None),
    }
}

/// Extract `l`'s image under one witnessing endomorphism by walking the
/// ancestor chain back down from the node that mapped to `top`, greedily
/// choosing edge-compatible candidates. `below` is the chain
/// `[l, a1, …, ak]` strictly below that node, leaf first. The greedy
/// choice is sound by `prune_node`'s invariant: a surviving parent image
/// has an edge-compatible candidate in every child's pruned set, and each
/// such candidate certifies its whole subtree.
fn descend_witness(
    q: &TreePattern,
    index: &PatIndex,
    below: &[NodeId],
    top: NodeId,
    images: &[Vec<NodeId>],
) -> NodeId {
    let mut image = top;
    for &p in below.iter().rev() {
        image = images[p.index()]
            .iter()
            .copied()
            .find(|&u| match q.node(p).edge {
                EdgeKind::Child => {
                    q.node(u).edge == EdgeKind::Child && q.node(u).parent == Some(image)
                }
                EdgeKind::Descendant => index.is_proper_ancestor(image, u),
            })
            .expect("surviving parent image has an edge-compatible child candidate");
    }
    image
}

/// `minimize-images` of Figure 3: ensure every descendant's images are
/// pruned, then prune `v`'s own images against its children.
fn minimize_images(
    q: &TreePattern,
    index: &PatIndex,
    v: NodeId,
    images: &mut [Vec<NodeId>],
    marked: &mut [bool],
) {
    if marked[v.index()] {
        // Already minimized on a previous ancestor visit — but one of its
        // children (the previous ancestor on the walk) may have changed, so
        // re-prune v itself against current child images.
        prune_node(q, q, index, v, images);
        return;
    }
    for c in original_children(q, v) {
        if !marked[c.index()] {
            minimize_images(q, index, c, images, marked);
        }
    }
    prune_node(q, q, index, v, images);
    marked[v.index()] = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::TypeInterner;
    use tpq_pattern::parse_pattern;

    fn p(s: &str, tys: &mut TypeInterner) -> TreePattern {
        parse_pattern(s, tys).unwrap()
    }

    fn leaf_named(q: &TreePattern, tys: &TypeInterner, name: &str) -> NodeId {
        q.leaves()
            .into_iter()
            .find(|&l| tys.name(q.node(l).primary) == name)
            .unwrap_or_else(|| panic!("no leaf {name}"))
    }

    /// Reference implementation: l is redundant iff the pattern without l
    /// still has a homomorphism into... precisely, iff an endomorphism
    /// non-identity on l exists, which (for a leaf) is equivalent to a
    /// homomorphism q → q where l's candidates exclude l. We recompute that
    /// with the naive backtracker by checking hom(q, q\{l}) — deleting the
    /// leaf and asking whether the smaller query still embeds the larger
    /// one (q ⊆ q\l always holds the other way).
    fn redundant_reference(q: &TreePattern, l: NodeId) -> bool {
        let mut without = q.clone();
        without.remove_leaf(l).unwrap();
        crate::mapping::has_homomorphism_naive(q, &without)
    }

    #[test]
    fn duplicate_branch_leaf_is_redundant() {
        let mut tys = TypeInterner::new();
        // Dept*[//DBProject]//Manager//DBProject: the bare DBProject branch
        // is subsumed by the Manager//DBProject branch.
        let q = p("Dept*[//DBProject]//Manager//DBProject", &mut tys);
        let branch_leaf = q.node(q.root()).children[0];
        assert!(q.node(branch_leaf).is_leaf());
        assert!(redundant_leaf(&q, branch_leaf));
        assert!(redundant_reference(&q, branch_leaf));
        // The deep DBProject (under Manager) is NOT redundant.
        let deep = *q.leaves().iter().find(|&&l| l != branch_leaf).unwrap();
        assert!(!redundant_leaf(&q, deep));
        assert!(!redundant_reference(&q, deep));
    }

    #[test]
    fn c_edge_leaf_not_subsumed_by_d_edge_twin() {
        let mut tys = TypeInterner::new();
        // a*[/b]//b : the c-child b is NOT redundant (c-edge is stricter),
        // but the d-child b IS (the c-child witnesses it).
        let q = p("a*[/b]//b", &mut tys);
        let kids = q.node(q.root()).children.clone();
        let (c_leaf, d_leaf) = (kids[0], kids[1]);
        assert!(!redundant_leaf(&q, c_leaf));
        assert!(redundant_leaf(&q, d_leaf));
        assert!(!redundant_reference(&q, c_leaf));
        assert!(redundant_reference(&q, d_leaf));
    }

    #[test]
    fn leaf_can_map_to_internal_node() {
        let mut tys = TypeInterner::new();
        // a*[/b]/b/c : the leaf b (left) maps onto the internal b (right).
        let q = p("a*[/b]/b/c", &mut tys);
        let kids = q.node(q.root()).children.clone();
        let b_leaf = kids[0];
        assert!(q.node(b_leaf).is_leaf());
        assert!(redundant_leaf(&q, b_leaf));
        assert!(redundant_reference(&q, b_leaf));
    }

    #[test]
    fn star_blocks_mapping() {
        let mut tys = TypeInterner::new();
        // The marked c leaf cannot be moved onto the unmarked c.
        let q = p("a[/b/c][/b/c*]", &mut tys);
        let starred = q.output();
        assert!(q.node(starred).is_leaf());
        // Its unmarked twin IS redundant.
        let twin = leaf_named(&q, &tys, "c");
        let twin = if twin == starred {
            q.leaves().into_iter().find(|&l| l != starred).unwrap()
        } else {
            twin
        };
        assert!(redundant_leaf(&q, twin));
        assert!(redundant_reference(&q, twin));
    }

    #[test]
    fn deep_chain_redundancy() {
        let mut tys = TypeInterner::new();
        // Articles/Article*[//Paragraph]//Section//Paragraph (Fig 2(b)-ish):
        // the shallow Paragraph is redundant via the deep one.
        let q = p("Articles/Article*[//Paragraph]//Section//Paragraph", &mut tys);
        let article = q.node(q.root()).children[0];
        let shallow = q.node(article).children[0];
        assert!(redundant_leaf(&q, shallow));
        assert!(redundant_reference(&q, shallow));
        let deep = leaf_named(&q, &tys, "Paragraph");
        let deep = if deep == shallow {
            q.leaves().into_iter().find(|&l| l != shallow).unwrap()
        } else {
            deep
        };
        assert!(!redundant_leaf(&q, deep));
    }

    #[test]
    fn no_same_type_node_means_not_redundant() {
        let mut tys = TypeInterner::new();
        let q = p("a*[/b]/c", &mut tys);
        for l in q.leaves() {
            assert!(!redundant_leaf(&q, l));
            assert!(!redundant_reference(&q, l));
        }
    }

    #[test]
    fn matches_reference_on_exhaustive_small_patterns() {
        // Cross-validate against the naive reference on a batch of shapes.
        let mut tys = TypeInterner::new();
        let shapes = [
            "a*[/b][/b]",
            "a*[//b][/b]",
            "a*[//b][//b]",
            "a*[/b/c][//c]",
            "a*[/b//c][/b/c]",
            "a*[//b//c][//c]",
            "a*[/a][/a/a]",
            "a*[//a]//a//a",
            "r*[/x/y][/x[/y][/z]]",
            "r*[//x/y][//x]",
        ];
        for s in shapes {
            let q = p(s, &mut tys);
            for l in q.leaves() {
                if l == q.output() {
                    continue;
                }
                assert_eq!(
                    redundant_leaf(&q, l),
                    redundant_reference(&q, l),
                    "pattern {s}, leaf {l}"
                );
            }
        }
    }

    #[test]
    fn stats_accumulate_table_time() {
        let mut tys = TypeInterner::new();
        let q = p("a*[//b][//b]", &mut tys);
        let mut stats = MinimizeStats::default();
        let l = q.node(q.root()).children[0];
        let _ = redundant_leaf_with_stats(&q, l, &mut stats);
        // tables_time was written (may round to zero on coarse clocks, but
        // the counter must exist and not panic).
        let _ = stats.tables_time;
    }
}
