//! Containment mappings (query homomorphisms), Section 4.
//!
//! A containment mapping `h : Q2 → Q1` maps nodes of `Q2` to nodes of `Q1`
//! such that
//!
//! 1. types are preserved — we use the (equivalent, see below) type-set
//!    inclusion `types(v) ⊆ types(h(v))`, and `h(v)` carries `*` iff `v`
//!    does;
//! 2. a c-child maps to a c-child, a d-child to a **proper descendant**.
//!
//! By the adapted homomorphism theorem, `Q1 ⊆ Q2` iff such a mapping
//! exists. For plain patterns (one type per node) the inclusion rule
//! reduces to type equality; for chase-augmented patterns, whose extra
//! types are exactly the co-occurrence closure of the primary type under a
//! *closed* constraint set, inclusion of the primary type and inclusion of
//! the full set coincide — so the one rule serves both Section 4 and
//! Section 5.
//!
//! [`has_homomorphism`] decides existence in polynomial time with the same
//! bottom-up candidate ("images") pruning the paper uses for redundancy
//! testing: candidates are exact — `u ∈ images(v)` after pruning iff the
//! subtree of `v` embeds below `u` with `v ↦ u` — because pattern children
//! are independent subtrees (mappings need not be injective).
//! [`has_homomorphism_naive`] is an exponential backtracking reference used
//! to cross-validate it in tests and ablation benches.

use tpq_base::{FxHashMap, Guard, Result};
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// Pre/post-order index over the alive nodes of a pattern, giving O(1)
/// proper-ancestor tests. This is the paper's "ancestor/descendant table"
/// (Section 6.1).
#[derive(Debug, Clone)]
pub struct PatIndex {
    pre: Vec<u32>,
    post: Vec<u32>,
}

impl PatIndex {
    /// Build for the alive nodes of `p`.
    pub fn build(p: &TreePattern) -> Self {
        let mut pre = vec![u32::MAX; p.arena_len()];
        let mut post = vec![u32::MAX; p.arena_len()];
        let mut pre_c = 0u32;
        let mut post_c = 0u32;
        enum Step {
            Enter(NodeId),
            Exit(NodeId),
        }
        let mut stack = vec![Step::Enter(p.root())];
        while let Some(step) = stack.pop() {
            match step {
                Step::Enter(id) => {
                    if !p.is_alive(id) {
                        continue;
                    }
                    pre[id.index()] = pre_c;
                    pre_c += 1;
                    stack.push(Step::Exit(id));
                    for &c in p.node(id).children.iter().rev() {
                        stack.push(Step::Enter(c));
                    }
                }
                Step::Exit(id) => {
                    post[id.index()] = post_c;
                    post_c += 1;
                }
            }
        }
        PatIndex { pre, post }
    }

    /// O(1): is `anc` a proper ancestor of `desc`?
    #[inline]
    pub fn is_proper_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        self.pre[anc.index()] < self.pre[desc.index()]
            && self.post[desc.index()] < self.post[anc.index()]
    }
}

/// Node-level compatibility for `v ↦ u`: type-set inclusion, `*`
/// preservation, and condition entailment.
///
/// The output node must map to the output node (that is what keeps answer
/// sets aligned), but a *non*-output node may map onto the output node:
/// `a[/b*][/b]` ≡ `a[/b*]` requires the unmarked `b` to fold onto the
/// marked one. (The paper's Figure 2(b) → 2(c) step relies on the same
/// freedom: the unmarked `Article` branch folds onto `Article*`.)
///
/// With value-based conditions (Section 7), the target's conditions must
/// logically entail the source's: every data node matching `u` then also
/// satisfies `v`'s conditions.
#[inline]
pub(crate) fn node_compatible(from: &TreePattern, v: NodeId, to: &TreePattern, u: NodeId) -> bool {
    (!from.node(v).output || to.node(u).output)
        && to.node(u).types.is_superset(&from.node(v).types)
        && tpq_pattern::condition::entails(&to.node(u).conditions, &from.node(v).conditions)
}

/// Alive, non-temporary children of `v` — the homomorphism *domain* side.
///
/// Temporary (augmentation-added) nodes are virtual: per Section 6.1 of
/// the paper they "are maintained only as redundant nodes in the images
/// and the ancestor/descendant tables", i.e. they serve as mapping targets
/// but never need images of their own. Treating them as domain nodes would
/// wrongly block removals (an original node whose only children are temps
/// must be removable by mapping onto a temp, which has no children).
pub(crate) fn original_children(q: &TreePattern, v: NodeId) -> Vec<NodeId> {
    q.node(v).children.iter().copied().filter(|&c| q.is_alive(c) && !q.node(c).temporary).collect()
}

/// Compute the pruned candidate sets ("images") for a homomorphism
/// `from → to`. `candidates[v]` after return is exactly the set of `u` such
/// that the (original-node) subtree of `v` embeds below `u` with `v ↦ u`.
///
/// Temporary nodes of `from` are skipped (virtual, targets only);
/// temporary nodes of `to` do participate as targets.
///
/// `exclude` optionally bans one specific pair `(v, u)` from the initial
/// candidates — the redundant-leaf test (Figure 3) initializes
/// `images(l)` without `l` itself.
///
/// This is the hot `O(n · maxImage)` table construction, so it is where
/// the [`Guard`] spends most of its steps: one step per candidate
/// considered. A tripped guard aborts mid-table with [`Err`]; callers
/// discard the partial table.
pub(crate) fn pruned_candidates(
    from: &TreePattern,
    to: &TreePattern,
    to_index: &PatIndex,
    exclude: Option<(NodeId, NodeId)>,
    guard: &Guard,
) -> Result<Vec<Vec<NodeId>>> {
    let mut cand: Vec<Vec<NodeId>> = vec![Vec::new(); from.arena_len()];
    let to_alive: Vec<NodeId> = to.alive_ids().collect();
    for v in from.alive_ids() {
        if from.node(v).temporary {
            continue;
        }
        guard.spend(to_alive.len() as u64)?;
        let mut list: Vec<NodeId> =
            to_alive.iter().copied().filter(|&u| node_compatible(from, v, to, u)).collect();
        if let Some((ev, eu)) = exclude {
            if ev == v {
                list.retain(|&u| u != eu);
            }
        }
        cand[v.index()] = list;
    }
    for v in from.post_order() {
        if !from.node(v).temporary {
            guard.spend(cand[v.index()].len() as u64 + 1)?;
            prune_node(from, to, to_index, v, &mut cand);
        }
    }
    Ok(cand)
}

/// Re-prune the candidate set of a single node `v` against its
/// (original) children's current candidate sets. Returns `true` if
/// anything was removed.
pub(crate) fn prune_node(
    from: &TreePattern,
    to: &TreePattern,
    to_index: &PatIndex,
    v: NodeId,
    cand: &mut [Vec<NodeId>],
) -> bool {
    let children = original_children(from, v);
    if children.is_empty() {
        return false;
    }
    let before = cand[v.index()].len();
    let mut kept = Vec::with_capacity(before);
    'outer: for i in 0..before {
        let u = cand[v.index()][i];
        for &w in &children {
            let ok = match from.node(w).edge {
                EdgeKind::Child => cand[w.index()].iter().any(|&u2| {
                    to.node(u2).edge == EdgeKind::Child && to.node(u2).parent == Some(u)
                }),
                EdgeKind::Descendant => {
                    cand[w.index()].iter().any(|&u2| to_index.is_proper_ancestor(u, u2))
                }
            };
            if !ok {
                continue 'outer;
            }
        }
        kept.push(u);
    }
    let changed = kept.len() != before;
    cand[v.index()] = kept;
    changed
}

/// Does a containment mapping `from → to` exist?
pub fn has_homomorphism(from: &TreePattern, to: &TreePattern) -> bool {
    has_homomorphism_guarded(from, to, &Guard::unlimited()).expect("unlimited guard cannot trip")
}

/// [`has_homomorphism`] under a [`Guard`]: the candidate-table build
/// spends one step per candidate considered.
pub fn has_homomorphism_guarded(
    from: &TreePattern,
    to: &TreePattern,
    guard: &Guard,
) -> Result<bool> {
    let to_index = PatIndex::build(to);
    let cand = pruned_candidates(from, to, &to_index, None, guard)?;
    Ok(!cand[from.root().index()].is_empty())
}

/// Find a containment mapping `from → to`, if any, as a node map.
///
/// Extraction is greedy top-down over the pruned candidates, which is
/// complete because candidates are exact (see module docs).
pub fn find_homomorphism(
    from: &TreePattern,
    to: &TreePattern,
) -> Option<FxHashMap<NodeId, NodeId>> {
    let to_index = PatIndex::build(to);
    let cand = pruned_candidates(from, to, &to_index, None, &Guard::unlimited())
        .expect("unlimited guard cannot trip");
    let root_img = *cand[from.root().index()].first()?;
    let mut map = FxHashMap::default();
    map.insert(from.root(), root_img);
    let mut stack = vec![from.root()];
    while let Some(v) = stack.pop() {
        let u = map[&v];
        for w in original_children(from, v) {
            let u2 = match from.node(w).edge {
                EdgeKind::Child => cand[w.index()].iter().copied().find(|&u2| {
                    to.node(u2).edge == EdgeKind::Child && to.node(u2).parent == Some(u)
                }),
                EdgeKind::Descendant => {
                    cand[w.index()].iter().copied().find(|&u2| to_index.is_proper_ancestor(u, u2))
                }
            }
            .expect("pruned candidate sets are exact");
            map.insert(w, u2);
            stack.push(w);
        }
    }
    Some(map)
}

/// Exponential backtracking reference implementation of
/// [`has_homomorphism`]; used for cross-validation only.
pub fn has_homomorphism_naive(from: &TreePattern, to: &TreePattern) -> bool {
    let to_index = PatIndex::build(to);
    let order: Vec<NodeId> =
        from.pre_order().into_iter().filter(|&v| !from.node(v).temporary).collect();
    let mut assignment: FxHashMap<NodeId, NodeId> = FxHashMap::default();
    backtrack(from, to, &to_index, &order, 0, &mut assignment)
}

fn backtrack(
    from: &TreePattern,
    to: &TreePattern,
    to_index: &PatIndex,
    order: &[NodeId],
    i: usize,
    assignment: &mut FxHashMap<NodeId, NodeId>,
) -> bool {
    if i == order.len() {
        return true;
    }
    let v = order[i];
    let parent_img = from.node(v).parent.map(|p| assignment[&p]);
    for u in to.alive_ids() {
        if !node_compatible(from, v, to, u) {
            continue;
        }
        if let Some(pu) = parent_img {
            let ok = match from.node(v).edge {
                EdgeKind::Child => {
                    to.node(u).edge == EdgeKind::Child && to.node(u).parent == Some(pu)
                }
                EdgeKind::Descendant => to_index.is_proper_ancestor(pu, u),
            };
            if !ok {
                continue;
            }
        }
        assignment.insert(v, u);
        if backtrack(from, to, to_index, order, i + 1, assignment) {
            return true;
        }
        assignment.remove(&v);
    }
    false
}

/// Verify that `map` really is a containment mapping `from → to`.
/// Used by tests to check witnesses produced by [`find_homomorphism`].
pub fn is_valid_homomorphism(
    from: &TreePattern,
    to: &TreePattern,
    map: &FxHashMap<NodeId, NodeId>,
) -> bool {
    let to_index = PatIndex::build(to);
    for v in from.alive_ids() {
        if from.node(v).temporary {
            continue;
        }
        let Some(&u) = map.get(&v) else { return false };
        if !to.is_alive(u) || !node_compatible(from, v, to, u) {
            return false;
        }
        if let Some(p) = from.node(v).parent {
            let Some(&pu) = map.get(&p) else { return false };
            let ok = match from.node(v).edge {
                EdgeKind::Child => {
                    to.node(u).edge == EdgeKind::Child && to.node(u).parent == Some(pu)
                }
                EdgeKind::Descendant => to_index.is_proper_ancestor(pu, u),
            };
            if !ok {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::TypeInterner;
    use tpq_pattern::parse_pattern;

    fn p(s: &str, tys: &mut TypeInterner) -> TreePattern {
        parse_pattern(s, tys).unwrap()
    }

    #[test]
    fn identity_hom_always_exists() {
        let mut tys = TypeInterner::new();
        for s in ["a", "a/b//c", "a*[/b][/b/c]//d"] {
            let q = p(s, &mut tys);
            assert!(has_homomorphism(&q, &q), "{s}");
            assert!(has_homomorphism_naive(&q, &q), "{s}");
        }
    }

    #[test]
    fn descendant_edge_maps_to_chain() {
        let mut tys = TypeInterner::new();
        // from: a//c ; to: a/b/c — the d-edge maps across the chain.
        let from = p("a//c", &mut tys);
        let to = p("a/b/c", &mut tys);
        assert!(has_homomorphism(&from, &to));
        assert!(has_homomorphism_naive(&from, &to));
        // But a c-edge cannot stretch.
        let from_c = p("a/c", &mut tys);
        assert!(!has_homomorphism(&from_c, &to));
        assert!(!has_homomorphism_naive(&from_c, &to));
    }

    #[test]
    fn descendant_is_proper() {
        let mut tys = TypeInterner::new();
        // a//a cannot map into a single a node.
        let from = p("a//a", &mut tys);
        let to = p("a", &mut tys);
        assert!(!has_homomorphism(&from, &to));
        assert!(!has_homomorphism_naive(&from, &to));
    }

    #[test]
    fn star_must_map_to_star() {
        let mut tys = TypeInterner::new();
        let from = p("a/b*", &mut tys);
        let to = p("a*[/b]", &mut tys);
        assert!(!has_homomorphism(&from, &to));
        assert!(!has_homomorphism_naive(&from, &to));
        let to2 = p("a/b*", &mut tys);
        assert!(has_homomorphism(&from, &to2));
    }

    #[test]
    fn non_injective_mappings_allowed() {
        let mut tys = TypeInterner::new();
        // Two b-branches of `from` can share the single b of `to`.
        let from = p("a*[/b]/b", &mut tys);
        let to = p("a*/b", &mut tys);
        assert!(has_homomorphism(&from, &to));
        assert!(has_homomorphism_naive(&from, &to));
    }

    #[test]
    fn figure_2h_right_branch_folds_left() {
        let mut tys = TypeInterner::new();
        let h = p("OrgUnit*[/Dept/Researcher//DBProject]//Dept//DBProject", &mut tys);
        let i = p("OrgUnit*/Dept/Researcher//DBProject", &mut tys);
        // Fig 2(h) ⊇ Fig 2(i) and vice versa: hom in both directions.
        assert!(has_homomorphism(&h, &i));
        assert!(has_homomorphism(&i, &h));
    }

    #[test]
    fn typeset_inclusion_enables_mapping_onto_multi_typed_nodes() {
        let mut tys = TypeInterner::new();
        let from = p("Org*/Employee", &mut tys);
        let mut to = p("Org*/PermEmp", &mut tys);
        let emp = tys.lookup("Employee").unwrap();
        let perm_node = to.node(to.root()).children[0];
        to.node_mut(perm_node).types.insert(emp);
        assert!(has_homomorphism(&from, &to));
        assert!(has_homomorphism_naive(&from, &to));
        // And not the other way around: PermEmp is not among Employee's types.
        assert!(!has_homomorphism(&to, &from));
    }

    #[test]
    fn find_homomorphism_produces_a_valid_witness() {
        let mut tys = TypeInterner::new();
        let from = p("a*[/b]//c", &mut tys);
        let to = p("a*[/b][/x//c]", &mut tys);
        let map = find_homomorphism(&from, &to).expect("hom exists");
        assert!(is_valid_homomorphism(&from, &to, &map));
        assert!(find_homomorphism(&to, &from).is_none());
    }

    #[test]
    fn pruning_agrees_with_naive_on_tricky_cases() {
        let mut tys = TypeInterner::new();
        let cases = [
            ("a*[/b/c][/b/d]", "a*/b[/c]/d", true),
            ("a*/b[/c]/d", "a*[/b/c][/b/d]", false),
            ("a*//b//c", "a*/b/x/c", true),
            ("a*//c//b", "a*/b/x/c", false),
            ("a*[//b][//c]", "a*//x[/b][/c]", true),
            ("a*[/a/a]", "a*/a/a", true),
            ("a*/a/a", "a*[/a/a]", true),
        ];
        for (f, t, want) in cases {
            let from = p(f, &mut tys);
            let to = p(t, &mut tys);
            assert_eq!(has_homomorphism(&from, &to), want, "{f} -> {t}");
            assert_eq!(has_homomorphism_naive(&from, &to), want, "naive {f} -> {t}");
        }
    }

    #[test]
    fn pat_index_matches_parent_walk() {
        let mut tys = TypeInterner::new();
        let mut q = p("a*[/b/c][//d]/e", &mut tys);
        // Remove a leaf so the index must handle tombstones.
        let d = q.leaves().into_iter().find(|&l| tys.name(q.node(l).primary) == "d").unwrap();
        q.remove_leaf(d).unwrap();
        let idx = PatIndex::build(&q);
        let alive: Vec<NodeId> = q.alive_ids().collect();
        for &a in &alive {
            for &b in &alive {
                assert_eq!(idx.is_proper_ancestor(a, b), q.is_proper_ancestor(a, b), "{a} anc {b}");
            }
        }
    }
}
