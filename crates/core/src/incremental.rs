//! The incremental CIM engine — the paper's Section 6.1 implementation
//! strategy.
//!
//! "The ancestor/descendant table as well as the images table are also
//! stored as hash tables" — i.e. they persist across redundancy tests
//! instead of being rebuilt for every leaf. [`CimEngine`] keeps
//!
//! * a globally pruned images table (`base`): for every original node `v`
//!   the exact set of nodes `u` such that the subtree of `v` embeds below
//!   `u` with `v ↦ u` (no exclusions);
//! * the pre/post ancestor/descendant index.
//!
//! Testing a leaf `l` then costs only an *overlay walk* along `l`'s
//! ancestor chain: `overlay(l) = base(l) \ {l}`, and each ancestor's
//! overlay set keeps exactly the base candidates whose path-child check
//! still passes against the overlay — every off-path constraint was
//! already verified when the base was pruned, and overlay sets only
//! shrink, so nothing else can change. The Figure 3 early exits apply
//! unchanged: an empty overlay set means "not redundant"; `v ∈ overlay(v)`
//! means "redundant" (identity extends upward because `u ∈ base(u)`
//! always holds).
//!
//! The tables are rebuilt only when a leaf is actually removed — removals
//! both grow sets (fewer constraints) and invalidate candidates pointing
//! at the removed node, so a clean rebuild is the simple sound choice.
//! Since tests outnumber removals, total table-building work drops from
//! `O(tests · n · maxImage)` to `O(removals · n · maxImage)`; the
//! `ablate-incremental` bench quantifies it.

use crate::mapping::{original_children, prune_node, pruned_candidates, PatIndex};
use crate::stats::MinimizeStats;
use std::time::Instant;
use tpq_base::{FxHashMap, FxHashSet, Guard, Result};
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// Incremental minimization engine over one (possibly augmented) pattern.
pub struct CimEngine {
    q: TreePattern,
    index: PatIndex,
    base: Vec<Vec<NodeId>>,
    /// Reverse index: `rev[u]` lists nodes whose base set (may) contain
    /// `u`. Maintained as a superset — stale entries are harmless (the
    /// deletion pass just finds nothing to delete).
    rev: Vec<Vec<NodeId>>,
}

impl CimEngine {
    /// Build the engine: ancestor/descendant index plus the globally
    /// pruned images table (timed into `stats.tables_time`).
    pub fn new(q: TreePattern, stats: &mut MinimizeStats) -> Self {
        Self::new_guarded(q, stats, &Guard::unlimited()).expect("unlimited guard cannot trip")
    }

    /// [`CimEngine::new`] under a [`Guard`]: table construction spends one
    /// step per candidate considered, so a small budget or deadline trips
    /// before the `O(n · maxImage)` build completes.
    pub fn new_guarded(q: TreePattern, stats: &mut MinimizeStats, guard: &Guard) -> Result<Self> {
        let _span = tpq_obs::span!("acim.tables");
        let t0 = Instant::now();
        let index = PatIndex::build(&q);
        let base = pruned_candidates(&q, &q, &index, None, guard)?;
        let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); q.arena_len()];
        for (w, set) in base.iter().enumerate() {
            for &u in set {
                rev[u.index()].push(NodeId(w as u32));
            }
        }
        stats.tables_time += t0.elapsed();
        if tpq_obs::enabled() {
            use tpq_obs::FieldValue::U64;
            let candidates: u64 = base.iter().map(|s| s.len() as u64).sum();
            tpq_obs::event(
                "acim.table",
                &[("nodes", U64(q.arena_len() as u64)), ("candidates", U64(candidates))],
            );
        }
        Ok(CimEngine { q, index, base, rev })
    }

    /// Borrow the current pattern.
    pub fn pattern(&self) -> &TreePattern {
        &self.q
    }

    /// Consume the engine, returning the minimized pattern.
    pub fn into_pattern(self) -> TreePattern {
        self.q
    }

    /// Maintain the tables across the removal of leaf `l` (and its
    /// already-detached temporary children `dead_temps`) instead of
    /// rebuilding:
    ///
    /// 1. delete the dead nodes from every set holding them as candidates
    ///    (via the reverse index) and cascade the shrinkage upward —
    ///    a set's pruning condition depends only on its children's sets,
    ///    so re-pruning parents to a fixpoint restores exactness;
    /// 2. recompute the sets of `l`'s proper ancestors from scratch
    ///    (they are the only nodes whose sets can *grow*: only
    ///    `parent(l)` lost a constraint, and growth propagates only
    ///    upward along the ancestor chain).
    ///
    /// The pre/post index stays valid: deleting leaves never changes the
    /// relative order of surviving nodes.
    /// A tripped guard leaves the tables stale; the pattern itself stays
    /// valid (the removal was already proven redundant), but the engine
    /// must be discarded — `run_guarded` propagates the error out.
    fn apply_removal(
        &mut self,
        l: NodeId,
        dead_temps: &[NodeId],
        stats: &mut MinimizeStats,
        guard: &Guard,
    ) -> Result<()> {
        let _span = tpq_obs::span!("acim.tables");
        let t0 = Instant::now();
        let ancestors: Vec<NodeId> = self.q.ancestors(l).collect();
        let anc_set: FxHashSet<NodeId> = ancestors.iter().copied().collect();
        // Step 1: delete dead candidates, cascade shrinkage.
        let mut worklist: Vec<NodeId> = Vec::new();
        let mut dead = vec![l];
        dead.extend_from_slice(dead_temps);
        for d in &dead {
            let owners = std::mem::take(&mut self.rev[d.index()]);
            for w in owners {
                if !self.q.is_alive(w) || self.q.node(w).temporary {
                    continue;
                }
                let set = &mut self.base[w.index()];
                let before = set.len();
                set.retain(|u| !dead.contains(u));
                if set.len() != before {
                    if let Some(p) = self.q.node(w).parent {
                        worklist.push(p);
                    }
                }
            }
            self.base[d.index()].clear();
        }
        while let Some(v) = worklist.pop() {
            guard.check()?;
            if !self.q.is_alive(v) || self.q.node(v).temporary || anc_set.contains(&v) {
                // Ancestors get a full recompute below.
                continue;
            }
            if prune_node(&self.q, &self.q, &self.index, v, &mut self.base) {
                if let Some(p) = self.q.node(v).parent {
                    worklist.push(p);
                }
            }
        }
        // Step 2: ancestors of l, bottom-up, recomputed from scratch.
        let targets: Vec<NodeId> = self.q.alive_ids().collect();
        for &v in &ancestors {
            guard.spend(targets.len() as u64)?;
            let mut set: Vec<NodeId> = targets
                .iter()
                .copied()
                .filter(|&u| crate::mapping::node_compatible(&self.q, v, &self.q, u))
                .collect();
            self.base[v.index()] = std::mem::take(&mut set);
            prune_node(&self.q, &self.q, &self.index, v, &mut self.base);
            for &u in &self.base[v.index()] {
                // Superset maintenance: record v as a (possible) owner.
                self.rev[u.index()].push(v);
            }
        }
        stats.tables_time += t0.elapsed();
        Ok(())
    }

    /// Does the single-child structural check pass for candidate `u` of
    /// the parent, given the child's (overlay) candidate set?
    fn child_check(&self, child: NodeId, child_set: &[NodeId], u: NodeId) -> bool {
        match self.q.node(child).edge {
            EdgeKind::Child => child_set.iter().any(|&u2| {
                self.q.node(u2).edge == EdgeKind::Child && self.q.node(u2).parent == Some(u)
            }),
            EdgeKind::Descendant => {
                child_set.iter().any(|&u2| self.index.is_proper_ancestor(u, u2))
            }
        }
    }

    /// Figure 3 redundancy test via the overlay walk. `l` must be an
    /// original leaf (no original children), not the root or output node.
    pub fn test_leaf(&self, l: NodeId) -> bool {
        self.test_leaf_witness(l).is_some()
    }

    /// [`CimEngine::test_leaf`], additionally returning the node `l` maps
    /// onto under one witnessing endomorphism (`None` = not redundant).
    /// The witness may be a temporary node — `tpq explain` resolves those
    /// back to the chase step that created them.
    pub fn test_leaf_witness(&self, l: NodeId) -> Option<NodeId> {
        let _span = tpq_obs::span!("acim.scan");
        debug_assert!(original_children(&self.q, l).is_empty());
        let mut overlay: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
        let start: Vec<NodeId> = self.base[l.index()].iter().copied().filter(|&u| u != l).collect();
        if start.is_empty() {
            return None;
        }
        overlay.insert(l, start);
        // The ancestor chain walked so far, leaf first — the spine the
        // witness extraction descends.
        let mut path = vec![l];
        for v in self.q.ancestors(l) {
            let path_child = *path.last().expect("path starts at l");
            let child_set = overlay[&path_child].clone();
            let newset: Vec<NodeId> = self.base[v.index()]
                .iter()
                .copied()
                .filter(|&u| self.child_check(path_child, &child_set, u))
                .collect();
            if newset.is_empty() {
                return None;
            }
            if newset.contains(&v) {
                return Some(self.descend_overlay(&path, v, &overlay));
            }
            overlay.insert(v, newset);
            path.push(v);
        }
        // The root was reached without an early exit; its overlay set is
        // non-empty, which (endomorphisms fix the root) means redundant.
        let root = path.pop().expect("the walk visited the root");
        let top = overlay[&root][0];
        Some(self.descend_overlay(&path, top, &overlay))
    }

    /// Extract `l`'s image by walking the overlay spine back down from the
    /// node that mapped to `top`, greedily choosing edge-compatible
    /// candidates. Sound because every overlay candidate came from `base`
    /// (so its whole subtree is certified) and every surviving parent
    /// candidate passed [`CimEngine::child_check`] against the child's
    /// overlay set — the same predicate used here to pick the child image.
    fn descend_overlay(
        &self,
        below: &[NodeId],
        top: NodeId,
        overlay: &FxHashMap<NodeId, Vec<NodeId>>,
    ) -> NodeId {
        let mut image = top;
        for &p in below.iter().rev() {
            image = overlay[&p]
                .iter()
                .copied()
                .find(|&u| match self.q.node(p).edge {
                    EdgeKind::Child => {
                        self.q.node(u).edge == EdgeKind::Child
                            && self.q.node(u).parent == Some(image)
                    }
                    EdgeKind::Descendant => self.index.is_proper_ancestor(image, u),
                })
                .expect("surviving image has an edge-compatible candidate in the overlay");
        }
        image
    }

    /// Run the MEO loop to completion. Returns removed node ids in order.
    pub fn run(&mut self, stats: &mut MinimizeStats) -> Vec<NodeId> {
        self.run_guarded(stats, &Guard::unlimited()).expect("unlimited guard cannot trip")
    }

    /// [`CimEngine::run`] under a [`Guard`]: checked at every MEO loop
    /// head, spent per redundancy test and per table-maintenance step. On
    /// a trip the engine's pattern is valid but partially minimized (every
    /// applied removal was proven redundant) — callers wanting
    /// all-or-nothing semantics should discard the engine.
    pub fn run_guarded(&mut self, stats: &mut MinimizeStats, guard: &Guard) -> Result<Vec<NodeId>> {
        let tests = tpq_obs::counter("redundancy_tests");
        let removals = tpq_obs::counter("cim_removed");
        let obs_on = tpq_obs::enabled();
        let mut removed = Vec::new();
        let mut non_redundant: FxHashSet<NodeId> = FxHashSet::default();
        loop {
            guard.check()?;
            let candidates: Vec<NodeId> = self
                .q
                .alive_ids()
                .filter(|&v| {
                    !self.q.node(v).temporary
                        && original_children(&self.q, v).is_empty()
                        && v != self.q.root()
                        && v != self.q.output()
                        && !non_redundant.contains(&v)
                })
                .collect();
            if candidates.is_empty() {
                break;
            }
            let mut progress = false;
            for l in candidates {
                if !self.q.is_alive(l) {
                    continue;
                }
                guard.spend(1)?;
                stats.redundancy_tests += 1;
                if obs_on {
                    tests.add(1);
                }
                if let Some(witness) = self.test_leaf_witness(l) {
                    if obs_on {
                        use tpq_obs::FieldValue::U64;
                        tpq_obs::event(
                            "cim.prune",
                            &[("node", U64(l.0 as u64)), ("witness", U64(witness.0 as u64))],
                        );
                    }
                    // Remove l and its temporary children, then maintain
                    // the tables incrementally.
                    let temps: Vec<NodeId> = self
                        .q
                        .node(l)
                        .children
                        .iter()
                        .copied()
                        .filter(|&c| self.q.is_alive(c))
                        .collect();
                    for &t in &temps {
                        debug_assert!(self.q.node(t).temporary);
                        self.q.remove_subtree(t).expect("temp subtree");
                    }
                    self.q.remove_leaf(l).expect("leaf");
                    self.apply_removal(l, &temps, stats, guard)?;
                    removed.push(l);
                    stats.cim_removed += 1;
                    if obs_on {
                        removals.add(1);
                    }
                    progress = true;
                } else {
                    non_redundant.insert(l);
                }
            }
            if !progress {
                break;
            }
        }
        Ok(removed)
    }
}

/// CIM via the incremental engine (Section 6.1 implementation). Same
/// result as [`crate::cim()`](fn@crate::cim), different cost profile.
pub fn cim_incremental(q: &TreePattern) -> TreePattern {
    cim_incremental_with_stats(q, &mut MinimizeStats::default())
}

/// [`cim_incremental`] with statistics collection.
pub fn cim_incremental_with_stats(q: &TreePattern, stats: &mut MinimizeStats) -> TreePattern {
    let t0 = Instant::now();
    let mut engine = CimEngine::new(q.clone(), stats);
    engine.run(stats);
    let (compacted, _) = engine.into_pattern().compact();
    stats.total_time += t0.elapsed();
    compacted
}

/// ACIM via the incremental engine, given a **closed** constraint set.
pub fn acim_incremental_closed(
    q: &TreePattern,
    closed: &tpq_constraints::ConstraintSet,
    stats: &mut MinimizeStats,
) -> TreePattern {
    acim_incremental_closed_guarded(q, closed, stats, &Guard::unlimited())
        .expect("unlimited guard cannot trip")
}

/// [`acim_incremental_closed`] under a [`Guard`]: the guard is threaded
/// through augmentation (chase steps), engine construction and the MEO
/// loop. The input pattern is never mutated — a tripped guard returns
/// [`Err`] and the caller's pattern is untouched.
pub fn acim_incremental_closed_guarded(
    q: &TreePattern,
    closed: &tpq_constraints::ConstraintSet,
    stats: &mut MinimizeStats,
    guard: &Guard,
) -> Result<TreePattern> {
    let _span = tpq_obs::span!("acim");
    let t0 = Instant::now();
    let mut work = q.clone();
    let allowed = crate::chase::present_types(&work);
    crate::chase::augment_guarded(&mut work, closed, &allowed, stats, guard)?;
    let mut engine = CimEngine::new_guarded(work, stats, guard)?;
    engine.run_guarded(stats, guard)?;
    let mut out = engine.into_pattern();
    out.strip_temporaries();
    let (compacted, _) = out.compact();
    stats.total_time += t0.elapsed();
    Ok(compacted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cim::cim;
    use tpq_base::TypeInterner;
    use tpq_constraints::parse_constraints;
    use tpq_pattern::{isomorphic, parse_pattern};

    #[test]
    fn agrees_with_rebuilding_cim_on_fixed_cases() {
        let mut tys = TypeInterner::new();
        for s in [
            "a",
            "Dept*[//DBProject]//Manager//DBProject",
            "OrgUnit*[/Dept/Researcher//DBProject]//Dept//DBProject",
            "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
            "r*[/a/b/c]/a/b/c/d",
            "a*[/b][/b/c]",
            "a*[/b/c][/b[/c][/d]]",
            "x*[//y][//y//z][//z]",
        ] {
            let q = parse_pattern(s, &mut tys).unwrap();
            let fast = cim_incremental(&q);
            let slow = cim(&q);
            assert!(
                isomorphic(&fast, &slow),
                "{s}: incremental {} vs rebuilding {}",
                fast.size(),
                slow.size()
            );
        }
    }

    #[test]
    fn moving_parent_case_detected() {
        // The case that makes the overlay walk necessary: removing the
        // left c requires moving its parent b too.
        let mut tys = TypeInterner::new();
        let q = parse_pattern("a*[/b/c][/b[/c][/d]]", &mut tys).unwrap();
        let m = cim_incremental(&q);
        assert_eq!(m.size(), 4, "the whole left /b/c branch folds onto the bigger b");
    }

    #[test]
    fn acim_incremental_matches_acim() {
        let mut tys = TypeInterner::new();
        let q = parse_pattern(
            "Articles[/Article//Paragraph]/Article*[/Title]//Section//Paragraph",
            &mut tys,
        )
        .unwrap();
        let ics = parse_constraints("Article -> Title\nSection ->> Paragraph", &mut tys)
            .unwrap()
            .closure();
        let mut stats = MinimizeStats::default();
        let inc = acim_incremental_closed(&q, &ics, &mut stats);
        let reg = crate::acim::acim(&q, &ics);
        assert!(isomorphic(&inc, &reg));
        assert_eq!(inc.size(), 3);
    }

    #[test]
    fn agrees_with_rebuilding_cim_on_random_patterns() {
        use tpq_pattern::EdgeKind;
        // Deterministic pseudo-random pattern family without pulling in a
        // rand dependency: mix a seed into shape decisions.
        for seed in 0u64..60 {
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut next = move |m: u64| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % m
            };
            let mut q = TreePattern::new(tpq_base::TypeId(next(3) as u32));
            let mut nodes = vec![q.root()];
            for _ in 0..next(10) + 2 {
                let parent = nodes[next(nodes.len() as u64) as usize];
                let edge = if next(2) == 0 { EdgeKind::Child } else { EdgeKind::Descendant };
                let n = q.add_child(parent, edge, tpq_base::TypeId(next(3) as u32));
                nodes.push(n);
            }
            let star = nodes[next(nodes.len() as u64) as usize];
            q.set_output(star);
            let fast = cim_incremental(&q);
            let slow = cim(&q);
            assert!(
                isomorphic(&fast, &slow),
                "seed {seed}: incremental {} vs rebuilding {}",
                fast.size(),
                slow.size()
            );
        }
    }

    #[test]
    fn stats_show_fewer_table_rebuilds() {
        // On a query with many non-redundant leaves, the incremental
        // engine spends less time building tables.
        let mut tys = TypeInterner::new();
        let mut dsl = String::from("root*");
        for i in 0..20 {
            dsl.push_str(&format!("[/t{i}]"));
        }
        dsl.push_str("[//dup//x][//dup//x]");
        let q = parse_pattern(&dsl, &mut tys).unwrap();
        let mut inc_stats = MinimizeStats::default();
        let mut reb_stats = MinimizeStats::default();
        let a = cim_incremental_with_stats(&q, &mut inc_stats);
        let b = crate::cim::cim_with_stats(&q, &mut reb_stats);
        assert!(isomorphic(&a, &b));
        assert!(
            inc_stats.tables_time <= reb_stats.tables_time,
            "incremental {:?} vs rebuilding {:?}",
            inc_stats.tables_time,
            reb_stats.tables_time
        );
    }
}
