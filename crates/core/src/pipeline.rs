//! The end-to-end minimization pipeline (Theorem 5.3): CDM as a fast
//! pre-filter, then ACIM for global minimality.

use crate::stats::MinimizeStats;
use std::sync::{Arc, Mutex, OnceLock};
use tpq_base::{Guard, Result};
use tpq_constraints::ConstraintSet;
use tpq_pattern::TreePattern;

/// Which algorithm(s) [`minimize_with`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Constraint-independent minimization only (ignores the constraints).
    CimOnly,
    /// ACIM alone (globally minimal, slower on large queries).
    AcimOnly,
    /// CDM alone (locally minimal, fastest; may not be globally minimal).
    CdmOnly,
    /// CDM pre-filter, then ACIM — globally minimal and the fastest way to
    /// get there (Section 6.4, Figure 9(b)).
    #[default]
    CdmThenAcim,
}

impl std::str::FromStr for Strategy {
    type Err = String;

    /// Parse the CLI / serve-protocol spelling of a strategy: `full`
    /// (or the empty string) for the default pipeline, `cim`, `acim`,
    /// `cdm` for the individual algorithms.
    fn from_str(s: &str) -> std::result::Result<Strategy, String> {
        match s {
            "" | "full" => Ok(Strategy::CdmThenAcim),
            "cim" => Ok(Strategy::CimOnly),
            "acim" => Ok(Strategy::AcimOnly),
            "cdm" => Ok(Strategy::CdmOnly),
            other => Err(format!("unknown strategy '{other}' (expected full, cim, acim or cdm)")),
        }
    }
}

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// The minimized (compacted) query.
    pub pattern: TreePattern,
    /// Per-phase measurements.
    pub stats: MinimizeStats,
}

/// Minimize `q` under `ics` with the default strategy
/// ([`Strategy::CdmThenAcim`]). Pass an empty set for pure
/// constraint-independent minimization.
///
/// ```
/// use tpq_base::TypeInterner;
/// use tpq_constraints::parse_constraints;
/// use tpq_core::minimize;
/// use tpq_pattern::parse_pattern;
///
/// let mut tys = TypeInterner::new();
/// let q = parse_pattern("Book*[/Title][/Publisher]", &mut tys).unwrap();
/// let ics = parse_constraints("Book -> Publisher", &mut tys).unwrap();
/// let out = minimize(&q, &ics);
/// assert_eq!(out.pattern.size(), 2); // the implied /Publisher branch folds
/// assert_eq!(out.stats.total_removed(), 1);
/// ```
pub fn minimize(q: &TreePattern, ics: &ConstraintSet) -> MinimizeOutcome {
    minimize_with(q, ics, Strategy::default())
}

/// Minimize `q` under `ics` with an explicit [`Strategy`].
///
/// One-shot convenience over [`crate::session::Minimizer`]. Repeated calls
/// against the same constraint set do **not** recompute the quadratic
/// closure: a small process-wide cache maps recently seen sets to their
/// closures (the `closure.cache.hit` / `closure.recomputed` counters
/// report its behavior). For heavy many-query workloads, prefer a
/// [`crate::session::Minimizer`] or [`crate::batch::BatchMinimizer`],
/// which also skip the set-equality probe.
pub fn minimize_with(q: &TreePattern, ics: &ConstraintSet, strategy: Strategy) -> MinimizeOutcome {
    crate::session::minimize_closed(q, &cached_closure(ics), strategy)
}

/// [`minimize_with`] under a [`Guard`]: same closure caching, but the
/// run is subject to the guard's deadline / step budget / cancellation
/// and returns [`Err`] (with the input untouched) when it trips.
pub fn minimize_with_guarded(
    q: &TreePattern,
    ics: &ConstraintSet,
    strategy: Strategy,
    guard: &Guard,
) -> Result<MinimizeOutcome> {
    crate::session::minimize_closed_guarded(q, &cached_closure(ics), strategy, guard)
}

/// Entries kept in the process-wide closure cache. Sets are compared by
/// value, so the probe is `O(|ics|)` — noise against the `O(T²)` fixpoint
/// it avoids — and collisions are impossible.
const CLOSURE_CACHE_CAPACITY: usize = 8;

/// Cache entries: the original set paired with its shared closure.
type ClosureCache = Vec<(ConstraintSet, Arc<ConstraintSet>)>;

/// The process-wide closure cache behind [`cached_closure`].
fn closure_cache() -> &'static Mutex<ClosureCache> {
    static CACHE: OnceLock<Mutex<ClosureCache>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Snapshot the process-wide closure cache as `(original, closed)` pairs
/// in LRU order (most recently used first). Serialization half of the
/// serve layer's warm-restart snapshots.
pub fn export_closures() -> Vec<(ConstraintSet, ConstraintSet)> {
    let entries = closure_cache().lock().expect("closure cache poisoned");
    entries.iter().map(|(original, closed)| (original.clone(), (**closed).clone())).collect()
}

/// Seed the process-wide closure cache with a previously exported
/// `(original, closed)` pair. `closed` **must** be the closure of
/// `original` (snapshots are checksummed, so a faithful restore
/// guarantees this); a wrong pairing would serve wrong closures.
/// Inserted at the LRU front; the capacity bound still applies.
pub fn import_closure(original: ConstraintSet, closed: ConstraintSet) {
    let mut entries = closure_cache().lock().expect("closure cache poisoned");
    entries.retain(|(o, _)| *o != original);
    entries.insert(0, (original, Arc::new(closed)));
    entries.truncate(CLOSURE_CACHE_CAPACITY);
}

/// Empty the process-wide closure cache (test isolation and the cold-start
/// halves of warm-restart benchmarks).
pub fn clear_closure_cache() {
    closure_cache().lock().expect("closure cache poisoned").clear();
}

/// The closure of `ics`, from the cache when this set was seen recently.
fn cached_closure(ics: &ConstraintSet) -> Arc<ConstraintSet> {
    let mut entries = closure_cache().lock().expect("closure cache poisoned");
    if let Some(pos) = entries.iter().position(|(original, _)| original == ics) {
        let hit = entries.remove(pos);
        let closed = Arc::clone(&hit.1);
        entries.insert(0, hit); // move to front (LRU)
        tpq_obs::incr("closure.cache.hit", 1);
        return closed;
    }
    let closed = Arc::new(ics.closure());
    tpq_obs::incr("closure.recomputed", 1);
    entries.insert(0, (ics.clone(), Arc::clone(&closed)));
    entries.truncate(CLOSURE_CACHE_CAPACITY);
    closed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent_under;
    use tpq_base::TypeInterner;
    use tpq_constraints::parse_constraints;
    use tpq_pattern::{isomorphic, parse_pattern};

    fn setup(q: &str, ics: &str) -> (TreePattern, ConstraintSet, TypeInterner) {
        let mut tys = TypeInterner::new();
        let pat = parse_pattern(q, &mut tys).unwrap();
        let set = parse_constraints(ics, &mut tys).unwrap();
        (pat, set, tys)
    }

    #[test]
    fn cdm_then_acim_equals_acim_alone() {
        // Theorem 5.3: the pre-filter does not change the outcome.
        let cases = [
            (
                "Articles[/Article//Paragraph]/Article*[/Title]//Section//Paragraph",
                "Article -> Title\nSection ->> Paragraph",
            ),
            (
                "Organization*[/Employee//Project][/PermEmp//DBproject]",
                "PermEmp ~ Employee\nDBproject ~ Project",
            ),
            ("Book*[/Title][/Publisher][//LastName]", "Book -> Publisher\nBook ->> LastName"),
            ("Dept*[//DBProject]//Manager//DBProject", ""),
        ];
        for (qs, is) in cases {
            let (q, ics, _) = setup(qs, is);
            let combined = minimize_with(&q, &ics, Strategy::CdmThenAcim);
            let direct = minimize_with(&q, &ics, Strategy::AcimOnly);
            assert!(
                isomorphic(&combined.pattern, &direct.pattern),
                "{qs}: CDM+ACIM ({}) vs ACIM ({})",
                combined.pattern.size(),
                direct.pattern.size()
            );
            assert!(equivalent_under(&q, &combined.pattern, &ics));
        }
    }

    #[test]
    fn cdm_only_is_between_input_and_global_minimum() {
        let (q, ics, _) = setup(
            "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
            "Section ->> Paragraph",
        );
        let local = minimize_with(&q, &ics, Strategy::CdmOnly).pattern;
        let global = minimize_with(&q, &ics, Strategy::AcimOnly).pattern;
        assert!(global.size() <= local.size());
        assert!(local.size() <= q.size());
        assert!(equivalent_under(&q, &local, &ics));
    }

    #[test]
    fn empty_constraints_all_strategies_agree_with_cim() {
        let (q, ics, _) = setup("Dept*[//DBProject]//Manager//DBProject", "");
        let cim_r = minimize_with(&q, &ics, Strategy::CimOnly).pattern;
        let acim_r = minimize_with(&q, &ics, Strategy::AcimOnly).pattern;
        let both = minimize_with(&q, &ics, Strategy::CdmThenAcim).pattern;
        assert!(isomorphic(&cim_r, &acim_r));
        assert!(isomorphic(&cim_r, &both));
    }

    #[test]
    fn stats_total_time_covers_phases() {
        let (q, ics, _) =
            setup("Book*[/Title][/Publisher][//LastName]", "Book -> Publisher\nBook ->> LastName");
        let out = minimize(&q, &ics);
        assert!(out.stats.total_time >= out.stats.tables_time);
        assert!(out.stats.total_removed() >= 1);
    }

    #[test]
    fn default_strategy_is_cdm_then_acim() {
        assert_eq!(Strategy::default(), Strategy::CdmThenAcim);
    }

    #[test]
    fn repeated_one_shot_calls_reuse_the_closure() {
        // Counters only move while the obs layer is enabled. reset()
        // isolates this assertion from whatever ran before it in the
        // binary; other tests may still add hits concurrently, so the
        // assertion is a floor, not an equality.
        tpq_obs::set_enabled(true);
        tpq_obs::reset();
        let (q, ics, _) =
            setup("Book*[/Title][/Publisher][//LastName]", "Book -> Publisher\nBook ->> LastName");
        let hits_before = tpq_obs::report().counter("closure.cache.hit");
        let a = minimize(&q, &ics).pattern;
        let b = minimize(&q, &ics).pattern;
        let c = minimize(&q, &ics).pattern;
        let hits_after = tpq_obs::report().counter("closure.cache.hit");
        assert!(
            hits_after >= hits_before + 2,
            "second and third calls must hit the closure cache ({hits_before} -> {hits_after})"
        );
        assert!(isomorphic(&a, &b) && isomorphic(&b, &c));
    }
}
