//! Containment and equivalence of tree pattern queries, with and without
//! integrity constraints (Sections 3.1, 3.2).
//!
//! Without constraints, `Q1 ⊆ Q2` iff a containment mapping `Q2 → Q1`
//! exists ([`crate::mapping`]).
//!
//! Under a constraint set `Σ`, `Q1 ⊆_Σ Q2` iff `Q2` maps into the
//! (possibly infinite) chase of `Q1` by `Σ`. We decide that without
//! materializing the chase: the candidate pruning is relaxed so that a
//! pattern child `w` of `v` with no image candidate below `u` can be
//! *discharged by a guarantee* — a derivation from the closed `Σ` showing
//! that every `Σ`-database node matching `u` must have the whole subtree
//! of `w` below it. Guarantee derivations descend strictly into the
//! pattern, so the recursion terminates; memoization keeps the whole test
//! polynomial.

use crate::mapping::{has_homomorphism, has_homomorphism_guarded, PatIndex};
use tpq_base::{FxHashMap, Guard, Result, TypeId, TypeSet};
use tpq_constraints::ConstraintSet;
use tpq_pattern::{EdgeKind, NodeId, TreePattern};

/// `q1 ⊆ q2`: every answer of `q1` on every database is an answer of `q2`.
pub fn contains(q1: &TreePattern, q2: &TreePattern) -> bool {
    has_homomorphism(q2, q1)
}

/// [`contains`] under a [`Guard`].
pub fn contains_guarded(q1: &TreePattern, q2: &TreePattern, guard: &Guard) -> Result<bool> {
    let held = has_homomorphism_guarded(q2, q1, guard)?;
    record_check("plain", q1, q2, held);
    Ok(held)
}

/// Emit the `containment.check` decision event (no-op when the
/// observability layer is disabled — one relaxed load).
fn record_check(kind: &'static str, q1: &TreePattern, q2: &TreePattern, held: bool) {
    use tpq_obs::FieldValue::{Str, U64};
    tpq_obs::event(
        "containment.check",
        &[
            ("kind", Str(kind)),
            ("q1_nodes", U64(q1.size() as u64)),
            ("q2_nodes", U64(q2.size() as u64)),
            ("holds", U64(held as u64)),
        ],
    );
}

/// `q1 ≡ q2`: two-way containment.
pub fn equivalent(q1: &TreePattern, q2: &TreePattern) -> bool {
    contains(q1, q2) && contains(q2, q1)
}

/// [`equivalent`] under a [`Guard`].
pub fn equivalent_guarded(q1: &TreePattern, q2: &TreePattern, guard: &Guard) -> Result<bool> {
    Ok(contains_guarded(q1, q2, guard)? && contains_guarded(q2, q1, guard)?)
}

/// `q1 ⊆_Σ q2`: containment over databases satisfying `ics`.
///
/// `ics` need not be closed; the closure is computed internally.
pub fn contains_under(q1: &TreePattern, q2: &TreePattern, ics: &ConstraintSet) -> bool {
    let closed = ics.closure();
    ContainmentUnder::new(q1, q2, &closed)
        .check(&Guard::unlimited())
        .expect("unlimited guard cannot trip")
}

/// [`contains_under`] under a [`Guard`]: the candidate-table build and
/// guarantee derivations spend steps; a tripped guard aborts with
/// [`Err`] (the inputs are read-only).
pub fn contains_under_guarded(
    q1: &TreePattern,
    q2: &TreePattern,
    ics: &ConstraintSet,
    guard: &Guard,
) -> Result<bool> {
    let closed = ics.closure();
    let held = ContainmentUnder::new(q1, q2, &closed).check(guard)?;
    record_check("under", q1, q2, held);
    Ok(held)
}

/// `q1 ≡_Σ q2`: two-way containment under `ics`.
pub fn equivalent_under(q1: &TreePattern, q2: &TreePattern, ics: &ConstraintSet) -> bool {
    equivalent_under_guarded(q1, q2, ics, &Guard::unlimited()).expect("unlimited guard cannot trip")
}

/// [`equivalent_under`] under a [`Guard`].
pub fn equivalent_under_guarded(
    q1: &TreePattern,
    q2: &TreePattern,
    ics: &ConstraintSet,
    guard: &Guard,
) -> Result<bool> {
    let closed = ics.closure();
    Ok(ContainmentUnder::new(q1, q2, &closed).check(guard)?
        && ContainmentUnder::new(q2, q1, &closed).check(guard)?)
}

struct ContainmentUnder<'a> {
    /// The containee — homomorphism *target* (side of the chase).
    q1: &'a TreePattern,
    /// The container — homomorphism *source*.
    q2: &'a TreePattern,
    closed: &'a ConstraintSet,
    q1_index: PatIndex,
    /// Memo for guarantee derivations: (basis type, q2 node, edge) → bool.
    memo: FxHashMap<(TypeId, NodeId, EdgeKind), bool>,
}

impl<'a> ContainmentUnder<'a> {
    fn new(q1: &'a TreePattern, q2: &'a TreePattern, closed: &'a ConstraintSet) -> Self {
        ContainmentUnder {
            q1,
            q2,
            closed,
            q1_index: PatIndex::build(q1),
            memo: FxHashMap::default(),
        }
    }

    /// Does `Σ` give every node of type `s` all the types in `need`?
    fn covers(&self, s: TypeId, need: &TypeSet) -> bool {
        need.iter().all(|t| t == s || self.closed.has_cooccurrence(s, t))
    }

    /// Under `Σ`, does every database node matching `u` (types `u_types`)
    /// also carry type `t`? Direct membership or via co-occurrence.
    fn node_has_type(&self, u_types: &TypeSet, t: TypeId) -> bool {
        u_types.iter().any(|s| s == t || self.closed.has_cooccurrence(s, t))
    }

    /// Is the q2 subtree rooted at `w`, reached over an edge of kind
    /// `edge`, guaranteed below every database node of type `basis`?
    fn guaranteed(
        &mut self,
        basis: TypeId,
        w: NodeId,
        edge: EdgeKind,
        guard: &Guard,
    ) -> Result<bool> {
        if self.q2.node(w).output {
            // The output node must map to the image of q1's output node,
            // never to IC-implied structure.
            return Ok(false);
        }
        if !self.q2.node(w).conditions.is_empty() {
            // ICs guarantee existence by type only; they say nothing about
            // attribute values, so a conditioned node cannot be discharged.
            return Ok(false);
        }
        if let Some(&hit) = self.memo.get(&(basis, w, edge)) {
            return Ok(hit);
        }
        guard.spend(1)?;
        let need = self.q2.node(w).types.clone();
        let witnesses: Vec<TypeId> = match edge {
            EdgeKind::Child => self.closed.required_children_of(basis).to_vec(),
            EdgeKind::Descendant => self.closed.required_descendants_of(basis).to_vec(),
        };
        let children: Vec<NodeId> =
            self.q2.node(w).children.iter().copied().filter(|&c| self.q2.is_alive(c)).collect();
        let mut ok = false;
        'witness: for s in witnesses {
            if !self.covers(s, &need) {
                continue;
            }
            for &x in &children {
                let xe = self.q2.node(x).edge;
                if !self.guaranteed(s, x, xe, guard)? {
                    continue 'witness;
                }
            }
            ok = true;
            break;
        }
        self.memo.insert((basis, w, edge), ok);
        Ok(ok)
    }

    /// Can the q2 child `w` of a node mapped to `u` be discharged by a
    /// guarantee?
    ///
    /// For a c-edge the guaranteed structure must hang directly under `u`,
    /// so only `u`'s own types can anchor it. For a d-edge the chase may
    /// attach the structure under *any* node of `q1` at or below `u`
    /// (e.g. `Section ->> Paragraph` guarantees a `Paragraph` below
    /// `Article*` through the `Section` descendant), so every such node's
    /// types are tried as anchors.
    fn discharged(&mut self, u: NodeId, w: NodeId, guard: &Guard) -> Result<bool> {
        let edge = self.q2.node(w).edge;
        match edge {
            EdgeKind::Child => {
                let basis: Vec<TypeId> = self.q1.node(u).types.iter().collect();
                for t in basis {
                    if self.guaranteed(t, w, EdgeKind::Child, guard)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            EdgeKind::Descendant => {
                let anchors: Vec<TypeId> = self
                    .q1
                    .alive_ids()
                    .filter(|&z| z == u || self.q1_index.is_proper_ancestor(u, z))
                    .flat_map(|z| self.q1.node(z).types.iter().collect::<Vec<_>>())
                    .collect();
                for t in anchors {
                    if self.guaranteed(t, w, EdgeKind::Descendant, guard)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    fn check(&mut self, guard: &Guard) -> Result<bool> {
        // Candidate sets for a homomorphism q2 → q1, with IC-aware node
        // compatibility and guarantee discharge during pruning.
        let q1_alive: Vec<NodeId> = self.q1.alive_ids().collect();
        let mut cand: Vec<Vec<NodeId>> = vec![Vec::new(); self.q2.arena_len()];
        for v in self.q2.alive_ids() {
            guard.spend(q1_alive.len() as u64)?;
            cand[v.index()] = q1_alive
                .iter()
                .copied()
                .filter(|&u| {
                    (!self.q2.node(v).output || self.q1.node(u).output)
                        && self
                            .q2
                            .node(v)
                            .types
                            .iter()
                            .all(|t| self.node_has_type(&self.q1.node(u).types, t))
                        && tpq_pattern::condition::entails(
                            &self.q1.node(u).conditions,
                            &self.q2.node(v).conditions,
                        )
                })
                .collect();
        }
        for v in self.q2.post_order() {
            guard.check()?;
            let children: Vec<NodeId> =
                self.q2.node(v).children.iter().copied().filter(|&c| self.q2.is_alive(c)).collect();
            if children.is_empty() {
                continue;
            }
            let current = std::mem::take(&mut cand[v.index()]);
            let mut kept = Vec::with_capacity(current.len());
            'outer: for u in current {
                guard.spend(children.len() as u64)?;
                for &w in &children {
                    let has_image = match self.q2.node(w).edge {
                        EdgeKind::Child => cand[w.index()].iter().any(|&u2| {
                            self.q1.node(u2).edge == EdgeKind::Child
                                && self.q1.node(u2).parent == Some(u)
                        }),
                        EdgeKind::Descendant => cand[w.index()]
                            .iter()
                            .any(|&u2| self.q1_index.is_proper_ancestor(u, u2)),
                    };
                    if !has_image && !self.discharged(u, w, guard)? {
                        continue 'outer;
                    }
                }
                kept.push(u);
            }
            cand[v.index()] = kept;
        }
        Ok(!cand[self.q2.root().index()].is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpq_base::TypeInterner;
    use tpq_constraints::parse_constraints;
    use tpq_pattern::parse_pattern;

    fn setup(
        q1: &str,
        q2: &str,
        ics: &str,
    ) -> (TreePattern, TreePattern, ConstraintSet, TypeInterner) {
        let mut tys = TypeInterner::new();
        let a = parse_pattern(q1, &mut tys).unwrap();
        let b = parse_pattern(q2, &mut tys).unwrap();
        let c = parse_constraints(ics, &mut tys).unwrap();
        (a, b, c, tys)
    }

    #[test]
    fn plain_containment_is_hom_in_reverse() {
        let (a, b, _, _) = setup("a*/b/c", "a*/b", "");
        // a/b/c is more restrictive: a/b/c ⊆ a/b.
        assert!(contains(&a, &b));
        assert!(!contains(&b, &a));
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn figure_2h_2i_equivalence() {
        let (h, i, _, _) = setup(
            "OrgUnit*[/Dept/Researcher//DBProject]//Dept//DBProject",
            "OrgUnit*/Dept/Researcher//DBProject",
            "",
        );
        assert!(equivalent(&h, &i));
    }

    #[test]
    fn star_position_breaks_figure_2h_equivalence() {
        // Paper, Section 3.1: with the * moved to the right-branch Dept the
        // two queries are no longer equivalent.
        let (h, i, _, _) = setup(
            "OrgUnit[/Dept/Researcher//DBProject]//Dept*//DBProject",
            "OrgUnit/Dept*/Researcher//DBProject",
            "",
        );
        assert!(!equivalent(&h, &i));
    }

    #[test]
    fn containment_under_required_child() {
        // Every Book has a Publisher: Book* ≡_Σ Book*[/Publisher].
        let (plain, with_pub, ics, _) = setup("Book*", "Book*[/Publisher]", "Book -> Publisher");
        assert!(contains_under(&plain, &with_pub, &ics));
        assert!(contains_under(&with_pub, &plain, &ics));
        assert!(equivalent_under(&plain, &with_pub, &ics));
        // Without the IC they are not equivalent.
        assert!(!equivalent(&plain, &with_pub));
    }

    #[test]
    fn containment_under_needs_the_right_edge_kind() {
        // Book ->> LastName does NOT imply a LastName *child*.
        let (plain, with_child, ics, _) = setup("Book*", "Book*/LastName", "Book ->> LastName");
        assert!(!contains_under(&plain, &with_child, &ics));
        let (plain2, with_desc, ics2, _) = setup("Book*", "Book*//LastName", "Book ->> LastName");
        assert!(contains_under(&plain2, &with_desc, &ics2));
    }

    #[test]
    fn guarantee_chains_compose() {
        // a -> u, u -> w: a* ≡_Σ a*/u/w even though the chain is two deep.
        let (plain, chain, ics, _) = setup("a*", "a*/u/w", "a -> u\nu -> w");
        assert!(contains_under(&plain, &chain, &ics));
        assert!(equivalent_under(&plain, &chain, &ics));
        // But a*/u/w/x is not guaranteed.
        let (plain2, deeper, ics2, _) = setup("a*", "a*/u/w/x", "a -> u\nu -> w");
        assert!(!contains_under(&plain2, &deeper, &ics2));
    }

    #[test]
    fn cooccurrence_containment() {
        // PermEmp ~ Employee: Org*/PermEmp ⊆_Σ Org*/Employee.
        let (perm, emp, ics, _) = setup("Org*/PermEmp", "Org*/Employee", "PermEmp ~ Employee");
        assert!(contains_under(&perm, &emp, &ics));
        assert!(!contains_under(&emp, &perm, &ics), "co-occurrence is directed");
        assert!(!contains(&perm, &emp), "not contained without the IC");
    }

    #[test]
    fn figure_2f_2g_equivalence_under_cooccurrence() {
        // Section 3.3 first illustration.
        let (f, g, ics, _) = setup(
            "Organization*[/Employee//Project][/PermEmp//DBproject]",
            "Organization*/PermEmp//DBproject",
            "PermEmp ~ Employee\nDBproject ~ Project",
        );
        assert!(equivalent_under(&f, &g, &ics));
        assert!(!equivalent(&f, &g));
    }

    #[test]
    fn figure_2a_2b_equivalence_under_article_title() {
        // Section 3.3: with Article -> Title, Figure 2(a) ≡ 2(b).
        let (a, b, ics, _) = setup(
            "Articles[/Article//Paragraph]/Article*[/Title]//Section//Paragraph",
            "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
            "Article -> Title",
        );
        assert!(equivalent_under(&a, &b, &ics));
    }

    #[test]
    fn figure_2b_2e_equivalence_under_section_paragraph() {
        // Section 3.3: with Section ->> Paragraph, Figure 2(b) ≡ 2(e) =
        // Articles/Article*//Section.
        let (b, e, ics, _) = setup(
            "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
            "Articles/Article*//Section",
            "Section ->> Paragraph",
        );
        assert!(equivalent_under(&b, &e, &ics));
        assert!(!equivalent(&b, &e));
    }

    #[test]
    fn d_edge_guarantee_anchors_on_descendant_nodes() {
        // The Paragraph below Article* is guaranteed through the Section
        // descendant, not through Article*'s own type.
        let (small, big, ics, _) =
            setup("Article*//Section", "Article*[//Paragraph]//Section", "Section ->> Paragraph");
        assert!(contains_under(&small, &big, &ics));
        assert!(!contains(&small, &big));
        // A c-edge cannot be anchored on a descendant.
        let (small2, big2, ics2, _) =
            setup("Article*//Section", "Article*[/Paragraph]//Section", "Section ->> Paragraph");
        assert!(!contains_under(&small2, &big2, &ics2));
    }

    #[test]
    fn output_node_cannot_be_discharged_by_guarantees() {
        // Even though every a has a b child, the *marked* b must come from
        // the query: a* ⊄_Σ a/b*.
        let (plain, marked, ics, _) = setup("a*", "a/b*", "a -> b");
        assert!(!contains_under(&plain, &marked, &ics));
    }

    #[test]
    fn empty_constraint_set_reduces_to_plain_containment() {
        let (a, b, none, _) = setup("x*[/y][/y/z]", "x*/y/z", "");
        assert_eq!(contains_under(&a, &b, &none), contains(&a, &b));
        assert_eq!(contains_under(&b, &a, &none), contains(&b, &a));
    }

    #[test]
    fn guarantees_inside_branches() {
        // d-edge guarantee with inner structure: every Dept has a Manager
        // descendant who (by ~) is a Person. Org*//Dept ⊆ Org*//Dept[//Person].
        let (lhs, rhs, ics, _) =
            setup("Org*//Dept", "Org*//Dept//Person", "Dept ->> Manager\nManager ~ Person");
        assert!(contains_under(&lhs, &rhs, &ics));
    }
}
