//! Instrumentation counters for the minimization algorithms.

use std::time::Duration;
use tpq_base::Json;

/// Measurements collected across a minimization run.
///
/// `tables_time` isolates the construction of the images and
/// ancestor/descendant tables, which Figure 7(b) of the paper reports as
/// ~60 % of total ACIM time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimizeStats {
    /// Wall time spent building images + ancestor/descendant tables.
    pub tables_time: Duration,
    /// Total wall time of the phase the stats were collected for.
    pub total_time: Duration,
    /// Nodes removed by the CIM (MEO) phase.
    pub cim_removed: usize,
    /// Nodes removed by the CDM (local pruning) phase.
    pub cdm_removed: usize,
    /// Temporary nodes added by augmentation.
    pub augment_nodes_added: usize,
    /// Co-occurrence types merged into original nodes by augmentation.
    pub augment_types_added: usize,
    /// Number of redundant-leaf tests performed.
    pub redundancy_tests: usize,
}

impl MinimizeStats {
    /// Merge another stats record into this one (durations and counters
    /// add). The record is `Copy`, so taking it by value costs nothing and
    /// spares callers the `&other.clone()` dance `absorb` used to force.
    pub fn merge(&mut self, other: MinimizeStats) {
        self.tables_time += other.tables_time;
        self.total_time += other.total_time;
        self.cim_removed += other.cim_removed;
        self.cdm_removed += other.cdm_removed;
        self.augment_nodes_added += other.augment_nodes_added;
        self.augment_types_added += other.augment_types_added;
        self.redundancy_tests += other.redundancy_tests;
    }

    /// Merge by reference.
    #[deprecated(since = "0.1.0", note = "use `merge`, which takes the record by value")]
    pub fn absorb(&mut self, other: &MinimizeStats) {
        self.merge(*other);
    }

    /// Fraction of total time spent building tables (0 when total is 0).
    pub fn tables_fraction(&self) -> f64 {
        let total = self.total_time.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.tables_time.as_secs_f64() / total
        }
    }

    /// Total nodes removed across phases.
    pub fn total_removed(&self) -> usize {
        self.cim_removed + self.cdm_removed
    }

    /// JSON form with times in microseconds, matching the metrics report
    /// schema (`docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("tables_micros", Json::Float(self.tables_time.as_secs_f64() * 1e6)),
            ("total_micros", Json::Float(self.total_time.as_secs_f64() * 1e6)),
            ("tables_fraction", Json::Float(self.tables_fraction())),
            ("cim_removed", Json::Int(self.cim_removed as i64)),
            ("cdm_removed", Json::Int(self.cdm_removed as i64)),
            ("augment_nodes_added", Json::Int(self.augment_nodes_added as i64)),
            ("augment_types_added", Json::Int(self.augment_types_added as i64)),
            ("redundancy_tests", Json::Int(self.redundancy_tests as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MinimizeStats {
        MinimizeStats {
            tables_time: Duration::from_millis(10),
            total_time: Duration::from_millis(30),
            cim_removed: 2,
            cdm_removed: 1,
            augment_nodes_added: 4,
            augment_types_added: 5,
            redundancy_tests: 6,
        }
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = sample();
        a.merge(a);
        assert_eq!(a.tables_time, Duration::from_millis(20));
        assert_eq!(a.cim_removed, 4);
        assert_eq!(a.total_removed(), 6);
        assert_eq!(a.redundancy_tests, 12);
    }

    #[test]
    #[allow(deprecated)]
    fn absorb_still_matches_merge() {
        let mut a = sample();
        let mut b = sample();
        a.absorb(&sample());
        b.merge(sample());
        assert_eq!(a, b);
    }

    #[test]
    fn tables_fraction_handles_zero_total() {
        assert_eq!(MinimizeStats::default().tables_fraction(), 0.0);
        let s = MinimizeStats {
            tables_time: Duration::from_millis(60),
            total_time: Duration::from_millis(100),
            ..Default::default()
        };
        assert!((s.tables_fraction() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn json_form_exposes_counters() {
        let j = sample().to_json();
        assert_eq!(j.get("redundancy_tests").and_then(Json::as_i64), Some(6));
        assert!(j.get("tables_fraction").and_then(Json::as_f64).unwrap() > 0.0);
    }
}
