//! Instrumentation counters for the minimization algorithms.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Measurements collected across a minimization run.
///
/// `tables_time` isolates the construction of the images and
/// ancestor/descendant tables, which Figure 7(b) of the paper reports as
/// ~60 % of total ACIM time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinimizeStats {
    /// Wall time spent building images + ancestor/descendant tables.
    pub tables_time: Duration,
    /// Total wall time of the phase the stats were collected for.
    pub total_time: Duration,
    /// Nodes removed by the CIM (MEO) phase.
    pub cim_removed: usize,
    /// Nodes removed by the CDM (local pruning) phase.
    pub cdm_removed: usize,
    /// Temporary nodes added by augmentation.
    pub augment_nodes_added: usize,
    /// Co-occurrence types merged into original nodes by augmentation.
    pub augment_types_added: usize,
    /// Number of redundant-leaf tests performed.
    pub redundancy_tests: usize,
}

impl MinimizeStats {
    /// Merge another stats record into this one (durations and counters
    /// add).
    pub fn absorb(&mut self, other: &MinimizeStats) {
        self.tables_time += other.tables_time;
        self.total_time += other.total_time;
        self.cim_removed += other.cim_removed;
        self.cdm_removed += other.cdm_removed;
        self.augment_nodes_added += other.augment_nodes_added;
        self.augment_types_added += other.augment_types_added;
        self.redundancy_tests += other.redundancy_tests;
    }

    /// Fraction of total time spent building tables (0 when total is 0).
    pub fn tables_fraction(&self) -> f64 {
        let total = self.total_time.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.tables_time.as_secs_f64() / total
        }
    }

    /// Total nodes removed across phases.
    pub fn total_removed(&self) -> usize {
        self.cim_removed + self.cdm_removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_fields() {
        let mut a = MinimizeStats {
            tables_time: Duration::from_millis(10),
            total_time: Duration::from_millis(30),
            cim_removed: 2,
            cdm_removed: 1,
            augment_nodes_added: 4,
            augment_types_added: 5,
            redundancy_tests: 6,
        };
        a.absorb(&a.clone());
        assert_eq!(a.tables_time, Duration::from_millis(20));
        assert_eq!(a.cim_removed, 4);
        assert_eq!(a.total_removed(), 6);
        assert_eq!(a.redundancy_tests, 12);
    }

    #[test]
    fn tables_fraction_handles_zero_total() {
        assert_eq!(MinimizeStats::default().tables_fraction(), 0.0);
        let s = MinimizeStats {
            tables_time: Duration::from_millis(60),
            total_time: Duration::from_millis(100),
            ..Default::default()
        };
        assert!((s.tables_fraction() - 0.6).abs() < 1e-9);
    }
}
