//! Constraint-Independent Minimization (Section 4).
//!
//! CIM computes a maximal elimination ordering (MEO): repeatedly find a
//! redundant leaf and delete it, until no leaf is redundant. By
//! Lemmas 4.1–4.3 the result is the unique (up to isomorphism) minimal
//! query equivalent to the input, regardless of the order in which
//! redundant leaves are chosen.
//!
//! Implementation notes (the Figure 3 enhancements):
//!
//! * a leaf once found non-redundant is never re-tested — deleting other
//!   redundant leaves cannot make it redundant (enhancement (1));
//! * removing a leaf may turn its parent into a leaf, which then becomes a
//!   removal candidate;
//! * the output (`*`) node, the root, and temporary (augmentation-added)
//!   nodes are never candidates. Temporary nodes still *participate* as
//!   mapping targets, which is exactly how ACIM exploits them.

use crate::mapping::original_children;
use crate::redundant::{redundant_leaf_with_stats, redundant_leaf_witness_guarded};
use crate::stats::MinimizeStats;
use std::time::Instant;
use tpq_base::{FxHashSet, Guard, Result};
use tpq_pattern::{NodeId, TreePattern};

/// Minimize `q` without constraints; returns the compacted minimal query.
pub fn cim(q: &TreePattern) -> TreePattern {
    cim_with_stats(q, &mut MinimizeStats::default())
}

/// [`cim`] with statistics collection.
pub fn cim_with_stats(q: &TreePattern, stats: &mut MinimizeStats) -> TreePattern {
    cim_with_stats_guarded(q, stats, &Guard::unlimited()).expect("unlimited guard cannot trip")
}

/// [`cim_with_stats`] under a [`Guard`]. The input is never mutated: a
/// tripped guard returns [`Err`] and the caller's pattern is untouched.
pub fn cim_with_stats_guarded(
    q: &TreePattern,
    stats: &mut MinimizeStats,
    guard: &Guard,
) -> Result<TreePattern> {
    let t0 = Instant::now();
    let mut work = q.clone();
    cim_in_place_guarded(&mut work, stats, guard)?;
    let (compacted, _) = work.compact();
    stats.total_time += t0.elapsed();
    Ok(compacted)
}

/// Run the MEO loop on `q` in place (no compaction). Returns the removed
/// node ids, in removal order — an elimination ordering witnessing the
/// minimization.
pub fn cim_in_place(q: &mut TreePattern, stats: &mut MinimizeStats) -> Vec<NodeId> {
    cim_in_place_guarded(q, stats, &Guard::unlimited()).expect("unlimited guard cannot trip")
}

/// [`cim_in_place`] under a [`Guard`]: the guard is checked at every loop
/// head and threaded through each redundancy test. On a tripped guard `q`
/// is left in a **valid but partially minimized** state — every removal
/// already applied was individually proven redundant, so `q` is still
/// equivalent to the input; callers that must not observe partial progress
/// should work on a clone (as [`crate::session::minimize_closed_guarded`]
/// does).
pub fn cim_in_place_guarded(
    q: &mut TreePattern,
    stats: &mut MinimizeStats,
    guard: &Guard,
) -> Result<Vec<NodeId>> {
    let _span = tpq_obs::span!("cim");
    let tests = tpq_obs::counter("redundancy_tests");
    let removals = tpq_obs::counter("cim_removed");
    let obs_on = tpq_obs::enabled();
    let mut removed = Vec::new();
    let mut non_redundant: FxHashSet<NodeId> = FxHashSet::default();
    loop {
        guard.check()?;
        let candidates: Vec<NodeId> = q_leaves(q)
            .into_iter()
            .filter(|&l| is_candidate(q, l) && !non_redundant.contains(&l))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let mut progress = false;
        for l in candidates {
            if !q.is_alive(l) {
                continue;
            }
            guard.spend(1)?;
            stats.redundancy_tests += 1;
            if obs_on {
                tests.add(1);
            }
            if let Some(witness) = redundant_leaf_witness_guarded(q, l, stats, guard)? {
                if obs_on {
                    use tpq_obs::FieldValue::U64;
                    tpq_obs::event(
                        "cim.prune",
                        &[("node", U64(l.0 as u64)), ("witness", U64(witness.0 as u64))],
                    );
                }
                remove_q_leaf(q, l);
                removed.push(l);
                stats.cim_removed += 1;
                if obs_on {
                    removals.add(1);
                }
                progress = true;
            } else {
                non_redundant.insert(l);
            }
        }
        if !progress {
            break;
        }
    }
    Ok(removed)
}

/// Original nodes with no alive original children — the elimination
/// candidates. Temporary children are virtual and do not keep a node
/// internal.
fn q_leaves(q: &TreePattern) -> Vec<NodeId> {
    q.alive_ids().filter(|&v| !q.node(v).temporary && original_children(q, v).is_empty()).collect()
}

/// Remove an original leaf, detaching any temporary children it carries
/// first (they were hung under it by augmentation and die with it).
fn remove_q_leaf(q: &mut TreePattern, l: NodeId) {
    let temps: Vec<NodeId> =
        q.node(l).children.iter().copied().filter(|&c| q.is_alive(c)).collect();
    for t in temps {
        debug_assert!(q.node(t).temporary);
        q.remove_subtree(t).expect("temp subtree is removable");
    }
    q.remove_leaf(l).expect("candidate is a removable leaf");
}

/// Run the MEO loop testing leaves in the order given by `priority`
/// (used by tests of Theorem 4.1: different orders, isomorphic results).
pub fn cim_with_order<F>(q: &TreePattern, mut priority: F) -> TreePattern
where
    F: FnMut(&TreePattern, &[NodeId]) -> Vec<NodeId>,
{
    let mut work = q.clone();
    let mut stats = MinimizeStats::default();
    let mut non_redundant: FxHashSet<NodeId> = FxHashSet::default();
    loop {
        let candidates: Vec<NodeId> = q_leaves(&work)
            .into_iter()
            .filter(|&l| is_candidate(&work, l) && !non_redundant.contains(&l))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let ordered = priority(&work, &candidates);
        let mut progress = false;
        for l in ordered {
            if !work.is_alive(l) || !original_children(&work, l).is_empty() {
                continue;
            }
            if redundant_leaf_with_stats(&work, l, &mut stats) {
                remove_q_leaf(&mut work, l);
                progress = true;
                // Re-collect candidates after each removal so the caller's
                // priority sees fresh state.
                break;
            } else {
                non_redundant.insert(l);
            }
        }
        if !progress {
            break;
        }
    }
    let (compacted, _) = work.compact();
    compacted
}

fn is_candidate(q: &TreePattern, l: NodeId) -> bool {
    l != q.root() && l != q.output() && !q.node(l).temporary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::equivalent;
    use tpq_base::TypeInterner;
    use tpq_pattern::{isomorphic, parse_pattern};

    fn p(s: &str, tys: &mut TypeInterner) -> TreePattern {
        parse_pattern(s, tys).unwrap()
    }

    #[test]
    fn already_minimal_queries_untouched() {
        let mut tys = TypeInterner::new();
        for s in ["a", "a*/b//c", "a*[/b][/c]", "a*[/b/c][/b/d]"] {
            let q = p(s, &mut tys);
            let m = cim(&q);
            assert!(isomorphic(&q, &m), "{s} should be untouched");
        }
    }

    #[test]
    fn intro_department_example() {
        // "departments that contain a database project and that contain
        // project managers managing a database project" — the first branch
        // is subsumed (Section 1).
        let mut tys = TypeInterner::new();
        let q = p("Dept*[//DBProject]//Manager//DBProject", &mut tys);
        let m = cim(&q);
        assert_eq!(m.size(), 3);
        assert!(equivalent(&q, &m));
        let expected = p("Dept*//Manager//DBProject", &mut tys);
        assert!(isomorphic(&m, &expected));
    }

    #[test]
    fn figure_2h_to_2i() {
        let mut tys = TypeInterner::new();
        let q = p("OrgUnit*[/Dept/Researcher//DBProject]//Dept//DBProject", &mut tys);
        let m = cim(&q);
        let expected = p("OrgUnit*/Dept/Researcher//DBProject", &mut tys);
        assert!(isomorphic(&m, &expected), "Figure 2(h) minimizes to 2(i)");
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn figure_2b_to_2c() {
        let mut tys = TypeInterner::new();
        let b = p("Articles[/Article//Paragraph]/Article*//Section//Paragraph", &mut tys);
        let m = cim(&b);
        let c = p("Articles/Article*//Section//Paragraph", &mut tys);
        assert!(isomorphic(&m, &c), "Figure 2(b) minimizes to 2(c)");
        assert!(equivalent(&b, &m));
    }

    #[test]
    fn cascading_removal_of_whole_branches() {
        let mut tys = TypeInterner::new();
        // The a/b/c branch folds onto the deeper a/b/c/d chain.
        let q = p("r*[/a/b/c]/a/b/c/d", &mut tys);
        let m = cim(&q);
        let expected = p("r*/a/b/c/d", &mut tys);
        assert!(isomorphic(&m, &expected));
    }

    #[test]
    fn output_node_always_survives() {
        let mut tys = TypeInterner::new();
        let q = p("a[/b*]/b", &mut tys);
        let m = cim(&q);
        // The unmarked b folds onto b*; the marked one stays.
        assert_eq!(m.size(), 2);
        assert!(m.node(m.output()).output);
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn result_has_no_redundant_leaves() {
        let mut tys = TypeInterner::new();
        let mut stats = MinimizeStats::default();
        for s in [
            "Dept*[//DBProject]//Manager//DBProject",
            "r*[/a/b][/a][/a/b/c]",
            "x*[//y][//y//z][//z]",
            "a*[/a/a][//a]",
        ] {
            let q = p(s, &mut tys);
            let m = cim(&q);
            for l in m.leaves() {
                if l == m.output() || l == m.root() {
                    continue;
                }
                assert!(
                    !crate::redundant::redundant_leaf_with_stats(&m, l, &mut stats),
                    "{s}: leaf {l} still redundant in result"
                );
            }
        }
    }

    #[test]
    fn different_orders_give_isomorphic_results() {
        let mut tys = TypeInterner::new();
        let q = p("r*[/a/b][/a/b/c][//a][/a[/b][/b/c]]", &mut tys);
        let forward = cim_with_order(&q, |_, c| c.to_vec());
        let backward = cim_with_order(&q, |_, c| {
            let mut v = c.to_vec();
            v.reverse();
            v
        });
        let default = cim(&q);
        assert!(isomorphic(&forward, &backward), "Theorem 4.1 uniqueness");
        assert!(isomorphic(&forward, &default));
        assert!(equivalent(&q, &forward));
    }

    #[test]
    fn cim_is_idempotent() {
        let mut tys = TypeInterner::new();
        let q = p("Dept*[//DBProject]//Manager//DBProject", &mut tys);
        let once = cim(&q);
        let twice = cim(&once);
        assert!(isomorphic(&once, &twice));
    }

    #[test]
    fn stats_count_removals_and_tests() {
        let mut tys = TypeInterner::new();
        let q = p("Dept*[//DBProject]//Manager//DBProject", &mut tys);
        let mut stats = MinimizeStats::default();
        let m = cim_with_stats(&q, &mut stats);
        assert_eq!(stats.cim_removed, 1);
        assert!(stats.redundancy_tests >= 1);
        assert_eq!(m.size(), q.size() - stats.cim_removed);
    }

    #[test]
    fn single_node_pattern_is_fixed_point() {
        let mut tys = TypeInterner::new();
        let q = p("a", &mut tys);
        assert_eq!(cim(&q).size(), 1);
    }
}
