//! ACIM — Augment, then CIM (Section 5.2–5.3).
//!
//! Algorithm ACIM minimizes a query under a set of required-child,
//! required-descendant and co-occurrence constraints:
//!
//! 1. close the constraint set logically;
//! 2. **augment** the query: merge co-occurrence types into original
//!    nodes and add temporary children for required child/descendant
//!    constraints whose target type occurs in the query ([`mod@crate::chase`]);
//! 3. run **CIM** on the augmented query — temporary nodes are never
//!    candidates for removal but do serve as mapping targets;
//! 4. strip all temporary nodes and chase-added types.
//!
//! Theorem 5.1: the result is the unique minimal query equivalent to the
//! input under the constraints. ACIM is a "clever implementation" of the
//! optimal strategy `A·M·R` of Lemma 5.4.

use crate::chase::{augment_guarded, present_types};
use crate::cim::cim_in_place_guarded;
use crate::stats::MinimizeStats;
use std::time::Instant;
use tpq_base::{Guard, Result};
use tpq_constraints::ConstraintSet;
use tpq_pattern::TreePattern;

/// Minimize `q` under `ics` (closure is computed internally). Returns the
/// compacted minimal equivalent query.
pub fn acim(q: &TreePattern, ics: &ConstraintSet) -> TreePattern {
    acim_with_stats(q, ics, &mut MinimizeStats::default())
}

/// [`acim`] with statistics collection. `stats.tables_time` accounts the
/// images/ancestor-table construction inside the CIM phase — the quantity
/// Figure 7(b) compares against total time.
pub fn acim_with_stats(
    q: &TreePattern,
    ics: &ConstraintSet,
    stats: &mut MinimizeStats,
) -> TreePattern {
    let closed = ics.closure();
    acim_closed(q, &closed, stats)
}

/// ACIM given an **already logically closed** constraint set — the form
/// the paper's Section 5.2 assumes ("we assume that Σ is a logically
/// closed set of ICs"). Use this to exclude closure computation from
/// benchmarks; an unclosed set silently yields a non-minimal (but still
/// equivalent) result.
pub fn acim_closed(
    q: &TreePattern,
    closed: &ConstraintSet,
    stats: &mut MinimizeStats,
) -> TreePattern {
    acim_closed_guarded(q, closed, stats, &Guard::unlimited())
        .expect("unlimited guard cannot trip and no failpoint is armed")
}

/// [`acim_closed`] under a [`Guard`]: threaded through augmentation and
/// the CIM phase. The input is never mutated — a tripped guard returns
/// [`Err`] and the caller's pattern is untouched.
pub fn acim_closed_guarded(
    q: &TreePattern,
    closed: &ConstraintSet,
    stats: &mut MinimizeStats,
    guard: &Guard,
) -> Result<TreePattern> {
    let _span = tpq_obs::span!("acim");
    let t0 = Instant::now();
    let mut work = q.clone();
    let allowed = present_types(&work);
    augment_guarded(&mut work, closed, &allowed, stats, guard)?;
    cim_in_place_guarded(&mut work, stats, guard)?;
    work.strip_temporaries();
    let (compacted, _) = work.compact();
    stats.total_time += t0.elapsed();
    Ok(compacted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{equivalent, equivalent_under};
    use tpq_base::TypeInterner;
    use tpq_constraints::parse_constraints;
    use tpq_pattern::{isomorphic, parse_pattern};

    fn setup(q: &str, ics: &str) -> (TreePattern, ConstraintSet, TypeInterner) {
        let mut tys = TypeInterner::new();
        let pat = parse_pattern(q, &mut tys).unwrap();
        let set = parse_constraints(ics, &mut tys).unwrap();
        (pat, set, tys)
    }

    #[test]
    fn no_constraints_reduces_to_cim() {
        let (q, ics, _) = setup("Dept*[//DBProject]//Manager//DBProject", "");
        let a = acim(&q, &ics);
        let c = crate::cim::cim(&q);
        assert!(isomorphic(&a, &c));
    }

    #[test]
    fn required_child_removes_leaf() {
        // "find the title and author of books that have a publisher" with
        // "every book has a publisher" (Section 1).
        let (q, ics, mut tys) = setup("Book*[/Title][/Author][/Publisher]", "Book -> Publisher");
        let m = acim(&q, &ics);
        let expected = parse_pattern("Book*[/Title][/Author]", &mut tys).unwrap();
        assert!(isomorphic(&m, &expected));
        assert!(equivalent_under(&q, &m, &ics));
        assert!(!equivalent(&q, &m), "not equivalent without the IC");
    }

    #[test]
    fn required_child_does_not_remove_constrained_subtree() {
        // Publisher has a Name child in the query: the IC only guarantees a
        // bare Publisher, so the subtree must survive.
        let (q, ics, _) = setup("Book*[/Title][/Publisher/Name]", "Book -> Publisher");
        let m = acim(&q, &ics);
        assert_eq!(m.size(), 4);
    }

    #[test]
    fn figure_2a_to_2e_full_pipeline() {
        // Section 3.3 / 5.2: 2(a) with Article -> Title and
        // Section ->> Paragraph minimizes to 2(e) = Articles/Article*//Section.
        let (q, ics, mut tys) = setup(
            "Articles[/Article//Paragraph]/Article*[/Title]//Section//Paragraph",
            "Article -> Title\nSection ->> Paragraph",
        );
        let m = acim(&q, &ics);
        let e = parse_pattern("Articles/Article*//Section", &mut tys).unwrap();
        assert!(isomorphic(&m, &e), "got {} nodes", m.size());
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn figure_2b_with_section_ic_needs_augmentation() {
        // Section 5.1's pitfall: chase+CIM naively gives 2(c), not minimal.
        // ACIM must reach 2(e) in one application.
        let (q, ics, mut tys) = setup(
            "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
            "Section ->> Paragraph",
        );
        let m = acim(&q, &ics);
        let e = parse_pattern("Articles/Article*//Section", &mut tys).unwrap();
        assert!(isomorphic(&m, &e));
    }

    #[test]
    fn figure_2d_augmentation_example() {
        // Section 3.3 last example: 2(d) = Articles[/Article//Paragraph]
        // /Article*//Section. With Section ->> Paragraph, augmentation
        // temporarily re-adds a Paragraph below Section, the left branch
        // folds, and the result is 2(e).
        let (q, ics, mut tys) =
            setup("Articles[/Article//Paragraph]/Article*//Section", "Section ->> Paragraph");
        let m = acim(&q, &ics);
        let e = parse_pattern("Articles/Article*//Section", &mut tys).unwrap();
        assert!(isomorphic(&m, &e));
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn figure_2f_to_2g_cooccurrence() {
        let (q, ics, mut tys) = setup(
            "Organization*[/Employee//Project][/PermEmp//DBproject]",
            "PermEmp ~ Employee\nDBproject ~ Project",
        );
        let m = acim(&q, &ics);
        let g = parse_pattern("Organization*/PermEmp//DBproject", &mut tys).unwrap();
        assert!(isomorphic(&m, &g), "Figure 2(f) minimizes to 2(g), got {} nodes", m.size());
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn result_carries_no_temporaries_or_extra_types() {
        let (q, ics, _) = setup("Book*[/Title][/Publisher]", "Book -> Publisher\nBook ~ Item");
        let m = acim(&q, &ics);
        for v in m.alive_ids() {
            assert!(!m.node(v).temporary);
            assert_eq!(m.node(v).types.len(), 1);
        }
        m.validate().unwrap();
    }

    #[test]
    fn acim_is_idempotent() {
        let (q, ics, _) = setup(
            "Articles[/Article//Paragraph]/Article*//Section//Paragraph",
            "Section ->> Paragraph",
        );
        let once = acim(&q, &ics);
        let twice = acim(&once, &ics);
        assert!(isomorphic(&once, &twice));
    }

    #[test]
    fn descendant_ic_removes_d_leaf_only() {
        let (q, ics, _) = setup("a*[//b][/b]", "a ->> b");
        let m = acim(&q, &ics);
        // The d-child b is implied by the IC; the c-child b is NOT (the IC
        // only guarantees a descendant) — but the d-child is also subsumed
        // by the c-child even without ICs. Result: a*[/b].
        assert_eq!(m.size(), 2);
        let child = m.node(m.root()).children[0];
        assert_eq!(m.node(child).edge, tpq_pattern::EdgeKind::Child);
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn chain_of_ics_removes_deep_structure() {
        // a -> u, u -> w: the whole /u/w spine is implied.
        let (q, ics, _) = setup("a*[/b]/u/w", "a -> u\nu -> w");
        let m = acim(&q, &ics);
        assert_eq!(m.size(), 2, "only a*[/b] remains, got {}", m.size());
        assert!(equivalent_under(&q, &m, &ics));
    }

    #[test]
    fn stats_record_augmentation_and_removals() {
        let (q, ics, _) = setup("Book*[/Title][/Publisher]", "Book -> Publisher");
        let mut stats = MinimizeStats::default();
        let _ = acim_with_stats(&q, &ics, &mut stats);
        assert!(stats.augment_nodes_added >= 1);
        assert_eq!(stats.cim_removed, 1);
        assert!(stats.total_time >= stats.tables_time);
    }
}
