//! Minimal in-tree benchmark harness.
//!
//! Exposes the subset of the `criterion` crate API the `tpq-bench` bench
//! files use — `Criterion`, `benchmark_group`, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! median-of-samples timer so the benches build and run without any
//! external dependency. The statistics are deliberately plain (median and
//! spread over `sample_size` timed batches after warmup); for
//! publication-quality confidence intervals swap in the real crate.
//!
//! Environment knobs:
//!
//! * `TPQ_BENCH_SAMPLES` — override every group's sample count;
//! * `TPQ_BENCH_FILTER` — substring filter on benchmark ids (the first CLI
//!   argument acts the same way, mirroring `cargo bench -- <filter>`).

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name criterion users
/// expect.
#[inline]
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark inside a group: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("acim", 64)` renders as `acim/64`.
    pub fn new<S: fmt::Display, P: fmt::Display>(name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// A parameter-only id (parity with the real crate).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The measurement driver handed to every benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median and min/max per-iteration times, filled by [`Bencher::iter`].
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    median: Duration,
    min: Duration,
    max: Duration,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via `black_box`.
    ///
    /// The routine is auto-batched so that one timed sample lasts roughly a
    /// millisecond, then `self.samples` samples are recorded and summarized
    /// by their median.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warmup + batch sizing: grow the batch until one batch costs
        // ≥ ~1 ms or the batch is large enough to swamp timer noise.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        self.result = Some(Sample {
            median: times[times.len() / 2],
            min: times[0],
            max: times[times.len() - 1],
            iters_per_sample: batch,
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Accepted for API parity; the shim's auto-batching already bounds
    /// wall time per benchmark.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run(id.to_string(), f);
        self
    }

    /// Run one parameterized benchmark. The input reference is passed
    /// through to the closure exactly like the real crate does.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run<F: FnOnce(&mut Bencher)>(&mut self, id: String, f: F) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.filter.is_empty() && !full.contains(&self.criterion.filter) {
            return;
        }
        let samples = self.criterion.sample_override.unwrap_or(self.samples);
        let mut bencher = Bencher { samples, result: None };
        f(&mut bencher);
        match bencher.result {
            Some(s) => {
                let per_iter = |d: Duration| d.as_secs_f64() * 1e9 / s.iters_per_sample as f64;
                println!(
                    "{full:<50} time: [{} {} {}]",
                    fmt_ns(per_iter(s.min)),
                    fmt_ns(per_iter(s.median)),
                    fmt_ns(per_iter(s.max)),
                );
            }
            None => println!("{full:<50} (no measurement: closure never called iter)"),
        }
    }

    /// End the group (stateless in the shim; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: String,
    sample_override: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards the filter as the first
        // non-flag argument.
        let filter = std::env::var("TPQ_BENCH_FILTER").ok().unwrap_or_else(|| {
            std::env::args().skip(1).find(|a| !a.starts_with('-')).unwrap_or_default()
        });
        let sample_override = std::env::var("TPQ_BENCH_SAMPLES").ok().and_then(|v| v.parse().ok());
        Criterion { filter, sample_override }
    }
}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("group: {name}");
        BenchmarkGroup { criterion: self, name, samples: 10 }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group(&id).bench_function("bench", f);
        self
    }

    /// Hook for `criterion_main!`; nothing to flush in the shim.
    pub fn final_summary(&mut self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declare a group of benchmark functions, exactly like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declare the benchmark `main`, exactly like the real crate.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("acim", 64).to_string(), "acim/64");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { samples: 3, result: None };
        b.iter(|| (0..100u64).sum::<u64>());
        let s = b.result.expect("iter records a sample");
        assert!(s.median >= s.min && s.median <= s.max);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion { filter: String::new(), sample_override: Some(2) };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("f", |b| {
                ran = true;
                b.iter(|| 1 + 1);
            });
            g.finish();
        }
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: "nope".into(), sample_override: None };
        let mut ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }
}
