//! LDAP-style directory querying (the paper's second motivating domain).
//!
//! Directory entries are multi-typed (`Employee` entries are also
//! `Person`s), the hierarchy is organizational, and natural constraints
//! hold ("every department entry must have some manager entry below it",
//! Section 2.2). This example:
//!
//! 1. loads a white-pages directory where entries carry several object
//!    classes (the `also="..."` attribute);
//! 2. minimizes the paper's Figure 2(h) query to Figure 2(i) with CIM;
//! 3. minimizes Figure 2(f) to 2(g) using co-occurrence constraints;
//! 4. answers all queries against the directory and cross-checks.
//!
//! Run with `cargo run --example ldap_directory`.

use tpq::prelude::*;

fn main() -> Result<()> {
    let mut types = TypeInterner::new();

    let directory = parse_xml(
        r#"<Root>
             <OrgUnit>
               <Dept>
                 <Researcher also="Employee,Person">
                   <Mgmt><DBProject also="Project"/></Mgmt>
                 </Researcher>
               </Dept>
             </OrgUnit>
             <OrgUnit>
               <Dept><Researcher also="Employee,Person"/></Dept>
               <Dept><DBProject also="Project"/></Dept>
             </OrgUnit>
             <Organization>
               <PermEmp also="Employee,Person">
                 <Assignment><DBproject also="Project"/></Assignment>
               </PermEmp>
             </Organization>
             <Organization>
               <Employee also="Person"><Project/></Employee>
             </Organization>
           </Root>"#,
        &mut types,
    )?;

    // ------------------------------------------------------------------
    // Figure 2(h) -> 2(i): constraint-independent.
    // ------------------------------------------------------------------
    let fig2h =
        parse_pattern("OrgUnit*[/Dept/Researcher//DBProject]//Dept//DBProject", &mut types)?;
    let fig2i = cim(&fig2h);
    println!("Figure 2(h), {} nodes, minimizes to:", fig2h.size());
    println!("{}", to_tree_string(&fig2i, &types));
    let mut h_answers = answer_set(&fig2h, &directory);
    let mut i_answers = answer_set(&fig2i, &directory);
    h_answers.sort_unstable();
    i_answers.sort_unstable();
    assert_eq!(h_answers, i_answers);
    println!("both return {} OrgUnit(s) on the directory ✓\n", i_answers.len());

    // ------------------------------------------------------------------
    // Figure 2(f) -> 2(g): co-occurrence constraints. In the directory
    // schema, permanent employees are employees and database projects are
    // projects.
    // ------------------------------------------------------------------
    let ics = parse_constraints(
        "PermEmp ~ Employee\n\
         PermEmp ~ Person\n\
         Employee ~ Person\n\
         DBproject ~ Project",
        &mut types,
    )?;
    let fig2f =
        parse_pattern("Organization*[/Employee//Project][/PermEmp//DBproject]", &mut types)?;
    let outcome = minimize(&fig2f, &ics);
    println!("Figure 2(f), {} nodes, minimizes under co-occurrence ICs to:", fig2f.size());
    println!("{}", to_tree_string(&outcome.pattern, &types));
    let fig2g = parse_pattern("Organization*/PermEmp//DBproject", &mut types)?;
    assert!(isomorphic(&outcome.pattern, &fig2g), "reached Figure 2(g)");

    let mut f_answers = answer_set(&fig2f, &directory);
    let mut g_answers = answer_set(&outcome.pattern, &directory);
    f_answers.sort_unstable();
    g_answers.sort_unstable();
    assert_eq!(f_answers, g_answers, "the directory satisfies the ICs, so answers agree");
    println!(
        "both return {} Organization(s): the one with a permanent employee ✓",
        g_answers.len()
    );

    // ------------------------------------------------------------------
    // A directory-flavoured constraint: every Dept has a manager below.
    // A query asking for it explicitly simplifies away.
    // ------------------------------------------------------------------
    let ics = parse_constraints("Dept ->> Researcher", &mut types)?;
    let q = parse_pattern("OrgUnit*/Dept//Researcher", &mut types)?;
    let m = minimize(&q, &ics);
    println!(
        "\n`OrgUnit*/Dept//Researcher` under `Dept ->> Researcher` shrinks to `{}`",
        to_dsl(&m.pattern, &types)
    );
    assert_eq!(m.pattern.size(), 2);
    Ok(())
}
