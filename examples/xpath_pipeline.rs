//! An end-to-end "query optimizer session" over XPath with value
//! conditions (the paper's Section 7 extension):
//!
//! 1. build a [`Minimizer`] once from the catalog schema;
//! 2. accept XPath queries with attribute predicates;
//! 3. minimize each, show the rewrite, and run both against a catalog to
//!    confirm the answers agree while the minimized query does less work.
//!
//! Run with `cargo run --example xpath_pipeline`.

use tpq::constraints::Schema;
use tpq::core::session::Minimizer;
use tpq::matching::count_embeddings;
use tpq::pattern::parse_xpath;
use tpq::prelude::*;

fn main() -> Result<()> {
    let mut types = TypeInterner::new();

    let schema = Schema::parse(
        "element Catalog = Book*\n\
         element Book = Title, Author+\n\
         element Author = LastName",
        &mut types,
    )?;
    let minimizer = Minimizer::new(&schema.infer_closed());

    let catalog = parse_xml(
        r#"<Catalog>
             <Book price="95" lang="en">
               <Title/><Author><LastName/></Author>
             </Book>
             <Book price="150" lang="en">
               <Title/><Author><LastName/></Author>
             </Book>
             <Book price="12" lang="fr">
               <Title/><Author><LastName/></Author>
             </Book>
           </Catalog>"#,
        &mut types,
    )?;

    // Three user queries, written the verbose way an application might
    // generate them.
    let queries = [
        // Title and LastName tests are schema-implied.
        "//Catalog/Book[Title][.//LastName][@price < 100]",
        // The looser price predicate is entailed by the stricter one.
        "//Catalog[.//Book[@price < 200]]/Book[@price < 100][Title]",
        // Nothing removable: conditions are incomparable.
        "//Catalog/Book[@price < 100][@lang = 'en']",
    ];

    for src in queries {
        let q = parse_xpath(src, &mut types)?;
        let out = minimizer.minimize(&q);
        println!("XPath : {src}");
        println!("parsed: {}", to_dsl(&q, &types));
        println!(
            "minimal ({} -> {} nodes): {}",
            q.size(),
            out.pattern.size(),
            to_dsl(&out.pattern, &types)
        );
        assert!(minimizer.equivalent(&q, &out.pattern));
        assert!(minimizer.is_minimal(&out.pattern));

        let mut before = answer_set(&q, &catalog);
        let mut after = answer_set(&out.pattern, &catalog);
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after, "schema-conforming catalog: answers agree");
        println!(
            "answers: {} book(s); embeddings enumerated {} -> {}\n",
            after.len(),
            count_embeddings(&q, &catalog),
            count_embeddings(&out.pattern, &catalog),
        );
    }
    println!("all three queries verified against the catalog ✓");
    Ok(())
}
