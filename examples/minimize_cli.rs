//! A small command-line minimizer.
//!
//! ```text
//! cargo run --example minimize_cli -- \
//!     --query 'Book*[/Title][/Publisher]' \
//!     --ic 'Book -> Publisher' \
//!     --strategy full --stats
//! ```
//!
//! Options:
//!   --query <dsl>          the tree pattern (required)
//!   --ic <line>            one constraint (repeatable)
//!   --constraints <file>   constraint file (one per line, # comments)
//!   --strategy <s>         cim | acim | cdm | full   (default: full)
//!   --tree                 print the ASCII tree, not just the DSL
//!   --stats                print phase statistics

use std::process::ExitCode;
use tpq::core::{minimize_with, Strategy};
use tpq::prelude::*;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> std::result::Result<(), String> {
    let mut args = std::env::args().skip(1);
    let mut query_src: Option<String> = None;
    let mut ic_lines: Vec<String> = Vec::new();
    let mut strategy = Strategy::CdmThenAcim;
    let mut show_tree = false;
    let mut show_stats = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--query" => query_src = Some(args.next().ok_or("--query needs a value")?),
            "--ic" => ic_lines.push(args.next().ok_or("--ic needs a value")?),
            "--constraints" => {
                let path = args.next().ok_or("--constraints needs a path")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                ic_lines.extend(text.lines().map(str::to_owned));
            }
            "--strategy" => {
                strategy = match args.next().as_deref() {
                    Some("cim") => Strategy::CimOnly,
                    Some("acim") => Strategy::AcimOnly,
                    Some("cdm") => Strategy::CdmOnly,
                    Some("full") => Strategy::CdmThenAcim,
                    other => return Err(format!("unknown strategy {other:?}")),
                }
            }
            "--tree" => show_tree = true,
            "--stats" => show_stats = true,
            "--help" | "-h" => {
                println!("see the module docs: cargo doc --example minimize_cli");
                return Ok(());
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    let query_src = query_src.ok_or("--query is required")?;

    let mut types = TypeInterner::new();
    let query = parse_pattern(&query_src, &mut types).map_err(|e| e.to_string())?;
    let ics = parse_constraints(&ic_lines.join("\n"), &mut types).map_err(|e| e.to_string())?;

    let outcome = minimize_with(&query, &ics, strategy);
    println!("{}", to_dsl(&outcome.pattern, &types));
    if show_tree {
        eprintln!("\n{}", to_tree_string(&outcome.pattern, &types));
    }
    if show_stats {
        let s = &outcome.stats;
        eprintln!(
            "nodes: {} -> {}  (cdm removed {}, cim/acim removed {})",
            query.size(),
            outcome.pattern.size(),
            s.cdm_removed,
            s.cim_removed
        );
        eprintln!(
            "augmentation: {} temp nodes, {} co-occurrence types",
            s.augment_nodes_added, s.augment_types_added
        );
        eprintln!(
            "time: {:?} total, {:?} building images/ancestor tables ({:.0}%)",
            s.total_time,
            s.tables_time,
            s.tables_fraction() * 100.0
        );
    }
    Ok(())
}
