//! The paper's running XML example, end to end:
//!
//! 1. declare a schema for an article catalog;
//! 2. infer integrity constraints from it (Section 2.2);
//! 3. minimize Figure 2(a) down to Figure 2(e) through the CDM + ACIM
//!    pipeline (Sections 3.3, 5.2);
//! 4. evaluate both queries against an XML catalog and verify the answer
//!    sets coincide, with fewer embedding checks for the minimal query.
//!
//! Run with `cargo run --example xml_catalog`.

use tpq::constraints::Schema;
use tpq::matching::count_embeddings;
use tpq::prelude::*;

fn main() -> Result<()> {
    let mut types = TypeInterner::new();

    // ------------------------------------------------------------------
    // Schema: every Article has a Title; every Section has a Paragraph
    // somewhere below (via the required Paragraph content of Section).
    // ------------------------------------------------------------------
    let schema = Schema::parse(
        "element Articles = Article+\n\
         element Article = Title, Author*, Section*\n\
         element Section = Paragraph, Section*\n\
         element Paragraph =",
        &mut types,
    )?;
    let ics = schema.infer_closed();
    println!("inferred {} constraints from the schema, e.g.:", ics.len());
    for c in ics.iter().take(4) {
        println!(
            "  {} {} {}",
            types.name(c.lhs()),
            match c {
                tpq::constraints::Constraint::RequiredChild(..) => "->",
                tpq::constraints::Constraint::RequiredDescendant(..) => "->>",
                tpq::constraints::Constraint::CoOccurrence(..) => "~",
            },
            types.name(c.rhs())
        );
    }

    // ------------------------------------------------------------------
    // Figure 2(a): articles (in a collection containing some article with
    // a paragraph) that have a title, and a paragraph, and a section with
    // a paragraph.
    // ------------------------------------------------------------------
    let fig2a = parse_pattern(
        "Articles[/Article//Paragraph]/Article*[/Title]//Section//Paragraph",
        &mut types,
    )?;
    println!("\nFigure 2(a), {} nodes:", fig2a.size());
    println!("{}", to_tree_string(&fig2a, &types));

    let outcome = minimize(&fig2a, &ics);
    println!(
        "minimal equivalent under the schema constraints, {} nodes (CDM removed {}, ACIM {}):",
        outcome.pattern.size(),
        outcome.stats.cdm_removed,
        outcome.stats.cim_removed,
    );
    println!("{}", to_tree_string(&outcome.pattern, &types));

    // Figure 2(e) is Articles/Article*//Section.
    let fig2e = parse_pattern("Articles/Article*//Section", &mut types)?;
    assert!(isomorphic(&outcome.pattern, &fig2e), "reached Figure 2(e)");
    assert!(equivalent_under(&fig2a, &outcome.pattern, &ics));

    // ------------------------------------------------------------------
    // Run both against a catalog document that satisfies the schema.
    // ------------------------------------------------------------------
    let catalog = parse_xml(
        r#"<Articles>
             <Article>
               <Title/>
               <Section><Paragraph/></Section>
             </Article>
             <Article>
               <Title/>
               <Section><Paragraph/><Section><Paragraph/></Section></Section>
             </Article>
             <Article>
               <Title/>
             </Article>
           </Articles>"#,
        &mut types,
    )?;
    let mut before = answer_set(&fig2a, &catalog);
    let mut after = answer_set(&outcome.pattern, &catalog);
    before.sort_unstable();
    after.sort_unstable();
    assert_eq!(before, after, "answer sets agree on a conforming catalog");
    println!("\nboth queries return the same {} article(s) on the catalog ✓", after.len());
    println!(
        "embeddings enumerated: {} for Figure 2(a) vs {} for the minimal query",
        count_embeddings(&fig2a, &catalog),
        count_embeddings(&outcome.pattern, &catalog),
    );
    Ok(())
}
