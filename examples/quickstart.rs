//! Quickstart: parse a tree pattern, minimize it with and without
//! integrity constraints, and inspect the result — then print where the
//! time went, phase by phase.
//!
//! Run with `cargo run --example quickstart`.

use tpq::prelude::*;

fn main() -> Result<()> {
    // Turn the observability layer on for the whole run so the final
    // report covers every phase below (it is off by default and costs
    // one atomic load per instrumented call site when disabled).
    tpq::obs::set_enabled(true);

    let mut types = TypeInterner::new();

    // ------------------------------------------------------------------
    // 1. Constraint-independent minimization (CIM).
    //
    // "Find departments that contain a database project and that contain
    // project managers managing a database project" — the first DBProject
    // requirement is subsumed by the second (paper, Section 1).
    // ------------------------------------------------------------------
    let query = parse_pattern("Dept*[//DBProject]//Manager//DBProject", &mut types)?;
    println!("original query ({} nodes):", query.size());
    println!("{}", to_tree_string(&query, &types));

    let minimal = cim(&query);
    println!("CIM-minimal query ({} nodes):", minimal.size());
    println!("{}", to_tree_string(&minimal, &types));
    assert!(equivalent(&query, &minimal));

    // ------------------------------------------------------------------
    // 2. Constraint-dependent minimization (CDM + ACIM).
    //
    // "Find the title and author of books that have a publisher", knowing
    // that every book has a publisher (paper, Section 1).
    // ------------------------------------------------------------------
    let query = parse_pattern("Book*[/Title][/Author][/Publisher]", &mut types)?;
    let ics = parse_constraints("Book -> Publisher", &mut types)?;
    let outcome = minimize(&query, &ics);
    println!(
        "under `Book -> Publisher`, {} nodes -> {} nodes:",
        query.size(),
        outcome.pattern.size()
    );
    println!("{}", to_tree_string(&outcome.pattern, &types));
    println!("as DSL: {}", to_dsl(&outcome.pattern, &types));
    assert!(equivalent_under(&query, &outcome.pattern, &ics));

    // ------------------------------------------------------------------
    // 3. The minimized query returns the same answers — demonstrably.
    // ------------------------------------------------------------------
    let doc = parse_xml(
        r#"<Shelf>
             <Book><Title/><Author/><Publisher/></Book>
             <Book><Title/><Author/><Publisher/><Year/></Book>
           </Shelf>"#,
        &mut types,
    )?;
    let before = answer_set(&query, &doc);
    let after = answer_set(&outcome.pattern, &doc);
    println!(
        "answers on sample shelf: {} before, {} after minimization",
        before.len(),
        after.len()
    );
    assert_eq!(before.len(), after.len());
    println!("minimization preserved the answer set ✓");

    // ------------------------------------------------------------------
    // 4. Where did the time go? The tpq-obs layer has been recording
    // spans for every phase (minimize / cdm / acim.tables / acim.scan /
    // match.*) the whole time — render the per-phase report.
    // ------------------------------------------------------------------
    println!("\nper-phase timing report:");
    print!("{}", tpq::obs::report().to_text());
    Ok(())
}
